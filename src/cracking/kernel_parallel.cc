#include "cracking/kernel_parallel.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "cracking/kernel_internal.h"

namespace scrack {

namespace {

constexpr Value kValueMin = std::numeric_limits<Value>::min();

Index NumChunks(Index n) {
  return (n + kParallelChunkValues - 1) / kParallelChunkValues;
}

/// Runs fn(0..num_tasks-1), fanning out per the context. The inline path is
/// the same loop in the same chunk order, so a null pool (or a nested call
/// on a pool worker, which ParallelFor runs inline) produces the same
/// stores as any parallel schedule.
void RunTasks(const ParallelContext& ctx, int64_t num_tasks,
              const std::function<void(int64_t)>& fn) {
  if (ctx.pool == nullptr || ctx.max_concurrency <= 1) {
    for (int64_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  ctx.pool->ParallelFor(num_tasks, ctx.max_concurrency, fn);
}

/// Hoare-equivalent swap count for a split at `split`: the number of
/// elements >= `bound` in the original [begin, split). Whole chunks read
/// their pass-1 below-count from `below`; the one chunk the split lands in
/// pays a partial re-count (at most one chunk scan).
int64_t HoareSwapsFromCounts(const Value* data, Index begin, Index split,
                             Value bound, const std::vector<Index>& below) {
  int64_t swaps = 0;
  for (size_t c = 0; c < below.size(); ++c) {
    const Index b = begin + static_cast<Index>(c) * kParallelChunkValues;
    if (b >= split) break;
    const Index e = std::min(split, b + kParallelChunkValues);
    // A whole chunk below the split keeps its pass-1 count; the one chunk
    // the split truncates recounts its prefix (at most one chunk scan).
    const Index below_c = e == b + kParallelChunkValues
                              ? below[c]
                              : CountInRange(data, b, e, kValueMin, bound);
    swaps += (e - b) - below_c;
    if (e == split) break;
  }
  return swaps;
}

}  // namespace

int EffectiveConcurrency(const ParallelContext& ctx, Index n) {
  if (ctx.pool == nullptr || ctx.max_concurrency <= 1 ||
      ThreadPool::OnWorkerThread()) {
    return 1;
  }
  int64_t width = ctx.max_concurrency;
  width = std::min<int64_t>(width, ctx.pool->num_threads() + 1);
  width = std::min<int64_t>(width, std::max<Index>(1, NumChunks(n)));
  return static_cast<int>(std::max<int64_t>(1, width));
}

Index ParallelCrackInTwo(Value* data, Index begin, Index end, Value pivot,
                         const ParallelContext& ctx,
                         KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  const Index n = end - begin;
  if (n <= 0) return begin;
  const Index chunks = NumChunks(n);

  // Pass 1: per-chunk below-pivot counts (disjoint slots, no races).
  std::vector<Index> lt(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    lt[static_cast<size_t>(c)] = CountInRange(data, b, e, kValueMin, pivot);
  });

  // Exclusive prefix: chunk c's below-elements land at
  // scratch[lt_before[c]...] ascending, its at-or-above elements at
  // scratch[n - ge_before[c] - 1 ...] descending — the global scan-order /
  // reversed-scan-order contract, independent of which thread runs when.
  std::vector<Index> lt_before(static_cast<size_t>(chunks));
  Index total_lt = 0;
  for (Index c = 0; c < chunks; ++c) {
    lt_before[static_cast<size_t>(c)] = total_lt;
    total_lt += lt[static_cast<size_t>(c)];
  }
  const Index split = begin + total_lt;
  const int64_t swaps =
      HoareSwapsFromCounts(data, begin, split, pivot, lt);

  // Pass 2: scatter into the shared scratch through the PR 3 branch-free
  // inner loop (three-way with lo == hi degenerates to two-way; the mid
  // cursor never fires, so the null mid pointer is never stored through).
  Value* scratch = kernel_internal::MainScratch(n);
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    Index a = lt_before[static_cast<size_t>(c)];
    Index ch = n - ((b - begin) - a);  // n - ge_before[c]
    Index bm = 0;
    kernel_internal::PartitionTailThreeWay(data, b, e, pivot, pivot, scratch,
                                           /*mid=*/nullptr, &a, &ch, &bm);
  });

  // Parallel copy-back (the barrier between passes published the scatter).
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index o = c * kParallelChunkValues;
    const Index len = std::min(n - o, kParallelChunkValues);
    std::memcpy(data + begin + o, scratch + o,
                sizeof(Value) * static_cast<size_t>(len));
  });

  counters->touched += n;
  counters->swaps += swaps;
  return split;
}

Index ParallelCrackInTwoInPlace(Value* data, Index begin, Index end,
                                Value pivot, const ParallelContext& ctx,
                                KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  const Index n = end - begin;
  if (n <= 0) return begin;
  const Index chunks = NumChunks(n);

  // Pass 1: partition every chunk in place with the dispatched (AVX2 or
  // predicated — bit-identical) sequential kernel. Chunks are disjoint.
  std::vector<Index> chunk_split(static_cast<size_t>(chunks));
  std::vector<int64_t> chunk_swaps(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    KernelCounters local;
    chunk_split[static_cast<size_t>(c)] =
        CrackInTwo(data, b, e, pivot, &local);
    chunk_swaps[static_cast<size_t>(c)] = local.swaps;
  });

  Index total_lt = 0;
  int64_t swaps = 0;
  for (Index c = 0; c < chunks; ++c) {
    const Index b = begin + c * kParallelChunkValues;
    total_lt += chunk_split[static_cast<size_t>(c)] - b;
    swaps += chunk_swaps[static_cast<size_t>(c)];
  }
  const Index split = begin + total_lt;

  // Fix-up: swap the i-th at-or-above element left of the split with the
  // i-th below element right of it (both in ascending position order — a
  // fixed pairing, so the final layout depends only on the chunk geometry).
  // The counts match by construction: #ge-left-of-split == #lt-right-of-it.
  struct Run {
    Index begin;
    Index end;
  };
  std::vector<Run> ge_runs;  // ge elements in [begin, split)
  std::vector<Run> lt_runs;  // lt elements in [split, end)
  for (Index c = 0; c < chunks; ++c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    const Index s = chunk_split[static_cast<size_t>(c)];
    if (s < e && s < split) ge_runs.push_back(Run{s, std::min(e, split)});
    const Index lo = std::max(b, split);
    if (lo < s) lt_runs.push_back(Run{lo, s});
  }
  size_t gi = 0;
  size_t li = 0;
  Index gp = ge_runs.empty() ? 0 : ge_runs[0].begin;
  Index lp = lt_runs.empty() ? 0 : lt_runs[0].begin;
  while (gi < ge_runs.size() && li < lt_runs.size()) {
    std::swap(data[gp], data[lp]);
    ++swaps;
    if (++gp == ge_runs[gi].end && ++gi < ge_runs.size()) {
      gp = ge_runs[gi].begin;
    }
    if (++lp == lt_runs[li].end && ++li < lt_runs.size()) {
      lp = lt_runs[li].begin;
    }
  }
  SCRACK_DCHECK(gi == ge_runs.size() && li == lt_runs.size());

  counters->touched += n;
  counters->swaps += swaps;
  return split;
}

std::pair<Index, Index> ParallelCrackInThree(Value* data, Index begin,
                                             Index end, Value lo, Value hi,
                                             const ParallelContext& ctx,
                                             KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  SCRACK_DCHECK(lo <= hi);
  const Index n = end - begin;
  if (n <= 0) return {begin, begin};
  const Index chunks = NumChunks(n);

  // Pass 1: per-chunk below-lo and in-[lo,hi) counts.
  std::vector<Index> lt(static_cast<size_t>(chunks));
  std::vector<Index> md(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    lt[static_cast<size_t>(c)] = CountInRange(data, b, e, kValueMin, lo);
    md[static_cast<size_t>(c)] = CountInRange(data, b, e, lo, hi);
  });

  std::vector<Index> lt_before(static_cast<size_t>(chunks));
  std::vector<Index> md_before(static_cast<size_t>(chunks));
  Index total_lt = 0;
  Index total_md = 0;
  for (Index c = 0; c < chunks; ++c) {
    lt_before[static_cast<size_t>(c)] = total_lt;
    md_before[static_cast<size_t>(c)] = total_md;
    total_lt += lt[static_cast<size_t>(c)];
    total_md += md[static_cast<size_t>(c)];
  }
  const Index p1 = begin + total_lt;
  const Index p2 = p1 + total_md;

  // Swap-equivalent work at the two split planes, exactly as the
  // sequential out-of-place kernel reports it (HoareSwapCount): elements
  // >= lo in the original prefix of length p1-begin, plus elements >= hi
  // in the original prefix of length p2-begin. Chunk counts of elements
  // < hi are lt + md.
  std::vector<Index> below_hi(static_cast<size_t>(chunks));
  for (Index c = 0; c < chunks; ++c) {
    below_hi[static_cast<size_t>(c)] =
        lt[static_cast<size_t>(c)] + md[static_cast<size_t>(c)];
  }
  const int64_t swaps = HoareSwapsFromCounts(data, begin, p1, lo, lt) +
                        HoareSwapsFromCounts(data, begin, p2, hi, below_hi);

  // Pass 2: scatter — lows to scratch front (scan order), highs to scratch
  // back (reversed scan order), middles to the mid buffer (scan order) —
  // the exact per-element stores of the sequential PartitionTailThreeWay,
  // just with per-chunk cursor origins.
  Value* scratch = kernel_internal::MainScratch(n);
  Value* mid = kernel_internal::MidScratch(total_md);
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    Index a = lt_before[static_cast<size_t>(c)];
    Index bm = md_before[static_cast<size_t>(c)];
    Index ch = n - ((b - begin) - a - bm);  // n - ge_before[c]
    kernel_internal::PartitionTailThreeWay(data, b, e, lo, hi, scratch, mid,
                                           &a, &ch, &bm);
  });

  // Parallel copy-back. Positions [0, A) and [A+B, n) come from the same
  // offsets of `scratch` (lows at the front, highs at the back with the
  // middle gap unwritten); positions [A, A+B) come from the mid buffer.
  const Index A = total_lt;
  const Index B = total_md;
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index o = c * kParallelChunkValues;
    const Index o_end = std::min(n, o + kParallelChunkValues);
    const Index low_end = std::min(o_end, A);
    if (o < low_end) {
      std::memcpy(data + begin + o, scratch + o,
                  sizeof(Value) * static_cast<size_t>(low_end - o));
    }
    const Index mid_begin = std::max(o, A);
    const Index mid_end = std::min(o_end, A + B);
    if (mid_begin < mid_end) {
      std::memcpy(data + begin + mid_begin, mid + (mid_begin - A),
                  sizeof(Value) * static_cast<size_t>(mid_end - mid_begin));
    }
    const Index high_begin = std::max(o, A + B);
    if (high_begin < o_end) {
      std::memcpy(data + begin + high_begin, scratch + high_begin,
                  sizeof(Value) * static_cast<size_t>(o_end - high_begin));
    }
  });

  counters->touched += n;
  counters->swaps += swaps;
  return {p1, p2};
}

void ParallelFilterInto(const Value* data, Index begin, Index end, Value qlo,
                        Value qhi, std::vector<Value>* out,
                        const ParallelContext& ctx,
                        KernelCounters* counters) {
  const Index n = end - begin;
  if (n <= 0) return;
  const Index chunks = NumChunks(n);

  std::vector<Index> hits(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    hits[static_cast<size_t>(c)] = CountInRange(data, b, e, qlo, qhi);
  });

  std::vector<Index> hits_before(static_cast<size_t>(chunks));
  Index total = 0;
  for (Index c = 0; c < chunks; ++c) {
    hits_before[static_cast<size_t>(c)] = total;
    total += hits[static_cast<size_t>(c)];
  }

  const Index base = static_cast<Index>(out->size());
  out->resize(static_cast<size_t>(base + total));
  Value* outp = out->data() + base;
  // Each chunk filters into its thread's registry buffer (the branch-free
  // FilterTail needs one element of store slack, which the exactly-sized
  // shared output cannot give without racing the next chunk's first slot),
  // then copies its exact hit count into its private output range.
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    const Index chunk_hits = hits[static_cast<size_t>(c)];
    if (chunk_hits == 0) return;  // also: outp may be null on a 0-hit query
    Value* stage = kernel_internal::SizedScratch(
        ThreadPool::ThreadScratch(/*slot=*/0), chunk_hits + 1);
    Index cursor = 0;
    kernel_internal::FilterTail(data, b, e, qlo, qhi, stage, &cursor);
    SCRACK_DCHECK(cursor == chunk_hits);
    std::memcpy(outp + hits_before[static_cast<size_t>(c)], stage,
                sizeof(Value) * static_cast<size_t>(chunk_hits));
  });

  counters->touched += n;
}

Index ParallelCountInRange(const Value* data, Index begin, Index end,
                           Value qlo, Value qhi,
                           const ParallelContext& ctx) {
  const Index n = end - begin;
  if (n <= 0) return 0;
  const Index chunks = NumChunks(n);
  std::vector<Index> partial(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    partial[static_cast<size_t>(c)] = CountInRange(data, b, e, qlo, qhi);
  });
  Index total = 0;
  for (Index c = 0; c < chunks; ++c) total += partial[static_cast<size_t>(c)];
  return total;
}

RangeSum ParallelSumInRange(const Value* data, Index begin, Index end,
                            Value qlo, Value qhi,
                            const ParallelContext& ctx) {
  const Index n = end - begin;
  RangeSum result;
  if (n <= 0) return result;
  const Index chunks = NumChunks(n);
  std::vector<RangeSum> partial(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    partial[static_cast<size_t>(c)] = SumInRange(data, b, e, qlo, qhi);
  });
  // Deterministic merge in chunk order (addition is commutative anyway).
  for (Index c = 0; c < chunks; ++c) {
    result.count += partial[static_cast<size_t>(c)].count;
    result.sum += partial[static_cast<size_t>(c)].sum;
  }
  return result;
}

RangeMinMax ParallelMinMaxInRange(const Value* data, Index begin, Index end,
                                  Value qlo, Value qhi,
                                  const ParallelContext& ctx) {
  const Index n = end - begin;
  RangeMinMax result;
  if (n <= 0) return result;
  const Index chunks = NumChunks(n);
  std::vector<RangeMinMax> partial(static_cast<size_t>(chunks));
  RunTasks(ctx, chunks, [&](int64_t c) {
    const Index b = begin + c * kParallelChunkValues;
    const Index e = std::min(end, b + kParallelChunkValues);
    partial[static_cast<size_t>(c)] = MinMaxInRange(data, b, e, qlo, qhi);
  });
  for (Index c = 0; c < chunks; ++c) {
    const RangeMinMax& p = partial[static_cast<size_t>(c)];
    if (p.count == 0) continue;
    if (result.count == 0) {
      result = p;
    } else {
      result.count += p.count;
      result.min = std::min(result.min, p.min);
      result.max = std::max(result.max, p.max);
    }
  }
  return result;
}

}  // namespace scrack
