// SelectEngine: the public interface every indexing strategy implements.
//
// A SelectEngine answers range selections over one attribute and may, as a
// collateral effect, physically reorganize its private copy of the data —
// exactly the select-operator contract database cracking plugs into (paper
// §2). The same interface covers the non-adaptive baselines (Scan, Sort),
// original cracking, every stochastic variant, and the partition/merge
// hybrids, so experiments and applications can swap strategies freely.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "storage/query.h"
#include "storage/query_result.h"
#include "util/cache_info.h"
#include "util/common.h"
#include "util/status.h"

namespace scrack {

class CrackerColumn;

/// Cumulative work counters. The harness snapshots these before and after a
/// query to derive per-query costs; `tuples_touched` is the paper's central
/// cost metric (§3, Fig. 2e).
struct EngineStats {
  int64_t queries = 0;          ///< Select calls served
  int64_t tuples_touched = 0;   ///< elements examined during reorganization
  int64_t swaps = 0;            ///< element exchanges
  int64_t cracks = 0;           ///< cracks registered in the index
  int64_t materialized = 0;     ///< tuples copied into owned result buffers
  int64_t updates_merged = 0;   ///< pending updates merged into the column
  int64_t random_pivots = 0;    ///< stochastic pivot choices taken
  int64_t aggregates_pushed = 0;  ///< aggregate queries this engine answered
                                  ///  below the materialization boundary
  int64_t parallel_cracks = 0;  ///< partition/filter passes that ran on the
                                ///  multi-threaded kernels (adaptive
                                ///  cutover: pieces >= parallel_min_values)
  int64_t threads_used = 0;     ///< high-water mark of threads one parallel
                                ///  pass engaged (caller included)
  int64_t shared_reads = 0;     ///< queries answered under a shared (reader)
                                ///  lock without touching the inner engine
  int64_t exclusive_cracks = 0;  ///< queries that escalated to the exclusive
                                 ///  writer path and ran the inner engine
  int64_t escalations = 0;      ///< exclusive-lock acquisitions (escalated
                                ///  queries plus staged updates)
  int64_t budget_exhausted = 0;  ///< queries whose swap budget ran out before
                                 ///  both bounds were cracked (the remainder
                                 ///  was answered by scan fallback)
  int64_t deferred_swaps = 0;   ///< gauge, not a counter: estimate of the
                                ///  swaps still owed for deferred bound
                                ///  values; exactly 0 once the budgeted
                                ///  engine has converged
  int64_t scan_fallback_tuples = 0;  ///< tuples answered by filtering an
                                     ///  uncracked piece instead of from
                                     ///  cracked piece bounds
  int64_t swap_budget = 0;      ///< enforced per-query swaps ceiling,
                                ///  including the small-piece slack (set
                                ///  once by budgeted engines; 0 = unbounded)
                                ///  — a limit the auditor checks against,
                                ///  not a cumulative counter
  int64_t fan_outs = 0;         ///< distributed routing decisions: one per
                                ///  query a coordinator dispatched (batch
                                ///  queries count individually)
  int64_t nodes_routed = 0;     ///< storage nodes whose [min,max] could
                                ///  intersect a routed predicate
  int64_t nodes_pruned = 0;     ///< storage nodes skipped because their
                                ///  value range cannot match; per fan-out,
                                ///  routed + pruned == cluster_nodes
  int64_t wire_bytes = 0;       ///< serialized request + response bytes
                                ///  that crossed the node transport
  int64_t node_failures = 0;    ///< node calls that failed at the transport
                                ///  (each retry failure counts again)
  int64_t degraded_queries = 0;  ///< queries answered from a partial node
                                 ///  set after retry was exhausted
  int64_t cluster_nodes = 0;    ///< effective storage-node count published
                                ///  by a coordinator (like swap_budget: a
                                ///  configuration fact, not a counter)
  int64_t transport_timeouts = 0;  ///< node calls (or connect attempts) that
                                   ///  expired against their per-call
                                   ///  deadline at the transport layer
  int64_t transport_reconnects = 0;  ///< connection re-establishments beyond
                                     ///  each node's first successful
                                     ///  connect (a healthy cluster stays 0)
  int64_t transport_retries = 0;  ///< in-call request resends after a
                                  ///  provably-safe send failure; never
                                  ///  counts ambiguous failures (a resend
                                  ///  rides a fresh connection, so
                                  ///  transport_retries <= transport_reconnects)
};

/// Tuning knobs shared by the engines. Defaults reproduce the paper's
/// choices on its hardware (L1-sized DDC threshold, L2 progressive switch,
/// 10% progressive swap budget).
struct EngineConfig {
  /// Seed for every stochastic decision; equal seeds give identical runs.
  uint64_t seed = 42;

  /// DDC/DDR stop recursive halving when a piece has at most this many
  /// values ("the size of L1 cache as piece size threshold provides the
  /// best overall performance", §4). Defaults to L1 bytes / sizeof(Value).
  Index crack_threshold_values = 32 * 1024 / static_cast<Index>(sizeof(Value));

  /// Progressive cracking applies only to pieces larger than this
  /// ("progressive cracking occurs only as long as the targeted data piece
  /// is bigger than the L2 cache", §4). Defaults to L2 bytes / sizeof(Value).
  Index progressive_min_values = 256 * 1024 / static_cast<Index>(sizeof(Value));

  /// Fraction of a piece's tuples that one query may swap in the
  /// progressive path (P10% == 0.10; P100% == MDD1R behaviour).
  double progressive_budget = 0.10;

  /// Selective variants: apply stochastic cracking every `every_x`-th query
  /// (FiftyFifty == 2; Fig. 18 sweeps 1..32).
  int64_t every_x = 2;

  /// FlipCoin: probability a query uses stochastic cracking.
  double flip_probability = 0.5;

  /// ScrackMon: number of cracks a piece absorbs before the next crack on
  /// it is forced to be stochastic (Fig. 19 sweeps 1..500).
  int64_t monitor_threshold = 1;

  /// Naive RkCrack baselines: force one random query before every k-th user
  /// query (R2crack == 2, Fig. 12).
  int64_t inject_period = 2;

  /// Hybrid (AICC/AICS) engines: values per initial partition. The paper's
  /// hybrids size partitions to cache/memory budgets; equal fixed-size
  /// slices preserve the partition/merge cost shape (see DESIGN.md).
  Index hybrid_partition_values = 1 << 16;

  /// Intra-query parallel cracking: threads one partition pass may use
  /// (caller included), served by the process-wide shared pool. <= 1 keeps
  /// every kernel on the sequential dispatched path. The engine-factory
  /// "-p"/"-pN" spec suffixes (crack-p, ddc-p8, ...) set this.
  int parallel_threads = 1;

  /// Adaptive cutover: pieces of at least this many values go through the
  /// parallel partition kernels, smaller pieces stay sequential (below the
  /// L3 footprint one core already runs at cache bandwidth and fan-out
  /// overhead loses). 0 = auto: SCRACK_PARALLEL_THRESHOLD (env, in values)
  /// when set, else the detected L3 size. Answers and piece boundaries are
  /// identical either way — the cutover only picks the kernel.
  Index parallel_min_values = 0;

  /// Memory-constrained mode: large cracks use the in-place chunked
  /// partition + fix-up instead of the out-of-place two-pass scatter (no
  /// column-sized scratch, sequential fix-up). SCRACK_PARALLEL_INPLACE=1
  /// in the environment forces this on.
  bool parallel_in_place = false;

  /// Budgeted progressive cracking (prog(B,<inner>)): maximum element
  /// exchanges one query may spend on reorganization. Partition work left
  /// over when the budget runs out is deferred to later queries and the
  /// uncracked remainder is answered by the scan/fold kernels, so answers
  /// are unchanged — only the reorganization schedule moves.
  /// 0 = unlimited. SCRACK_SWAP_BUDGET (env) overrides when set.
  int64_t swap_budget = 0;

  /// Per-query latency deadline in microseconds, for SLO *reporting*
  /// (scrack_serve --slo classifies measured latencies against it). Never
  /// consulted by the engines: deterministic work bounding is swap_budget's
  /// job; a wall-clock cutoff inside an engine would make reorganization
  /// schedule-dependent. 0 = no deadline. SCRACK_DEADLINE_US (env)
  /// overrides when set.
  double deadline_us = 0.0;

  /// Budgeted progressive cracking: pieces of at most this many values are
  /// cracked to completion even when the budget is exhausted (the budgeted
  /// analog of a progressive index's small-piece sort cutoff — finishing a
  /// cache-resident piece is cheaper than carrying its partition state).
  /// At most two such pieces (one per query bound) may overdraw a query's
  /// budget, so the enforced per-query ceiling is
  /// swap_budget + 2 * budget_small_piece_values.
  /// 0 = crack_threshold_values.
  Index budget_small_piece_values = 0;

  /// Populates the cache-derived fields from the host's cache hierarchy.
  static EngineConfig Detected() {
    EngineConfig config;
    const CacheInfo cache = CacheInfo::Detect();
    config.crack_threshold_values = cache.L1Values();
    config.progressive_min_values = cache.L2Values();
    return config;
  }
};

/// Interface of a range-select strategy over one column.
///
/// Queries are half-open ranges [low, high); the result reports every tuple
/// v with low <= v < high. Select is infallible for valid inputs and returns
/// a Status only for contract violations (low > high) or failed update
/// merges.
class SelectEngine {
 public:
  virtual ~SelectEngine() = default;

  /// Answers [low, high), possibly reorganizing the underlying column.
  virtual Status Select(Value low, Value high, QueryResult* result) = 0;

  /// Convenience wrapper for benches/examples where inputs are known valid.
  QueryResult SelectOrDie(Value low, Value high) {
    QueryResult result;
    Status status = Select(low, high, &result);
    SCRACK_CHECK(status.ok());
    return result;
  }

  /// Answers one Query (range + output mode). The default implementation
  /// routes through Select — identical reorganization side effects — and
  /// folds the result into the requested aggregate, so every engine is
  /// correct by default. Engines override it where pushdown pays: Scan
  /// aggregates in its single pass with no owned buffers, cracking engines
  /// answer kCount/kExists straight from index piece bounds, ShardedEngine
  /// merges per-shard partial aggregates. `*output` is reset first.
  virtual Status Execute(const Query& query, QueryOutput* output);

  /// Answers a batch of queries; outputs[i] answers queries[i]. Aggregate
  /// answers are identical to issuing the queries one by one through
  /// Execute (updates staged before the batch are visible to every query
  /// in it), and the per-query overhead is amortized: one lock acquisition
  /// in ThreadSafeEngine, one shard fan-out in ShardedEngine, one
  /// pending-update intersection pass in the cracking engines. Two
  /// caveats. First, kMaterialize outputs obey the usual view lifetime: on
  /// a view-returning engine, every materialize output except the batch's
  /// last holds views already invalidated by the later queries' own
  /// reorganization — consume them through a deep-copying wrapper
  /// (threadsafe/sharded) or use aggregate modes. Second, the hull pass
  /// means a batch can surface a staged-update failure (delete of an
  /// absent value anywhere inside the batch's bounding hull) that
  /// one-by-one execution would only hit once a query's own range covered
  /// it. On error the contents of *outputs are unspecified.
  virtual Status ExecuteBatch(const std::vector<Query>& queries,
                              std::vector<QueryOutput>* outputs);

  /// Convenience wrapper for benches/examples where inputs are known valid.
  QueryOutput ExecuteOrDie(const Query& query) {
    QueryOutput output;
    Status status = Execute(query, &output);
    SCRACK_CHECK(status.ok());
    return output;
  }

  /// Whether an interval endpoint is part of the result.
  enum class Bound { kInclusive, kExclusive };

  /// General-interval select: answers predicates like the paper's Fig. 1
  /// ("A > 10 and A < 14" — both exclusive). For the integer Value domain
  /// every interval maps onto the canonical half-open [low', high') form.
  Status SelectInterval(Value low, Bound low_bound, Value high,
                        Bound high_bound, QueryResult* result) {
    constexpr Value kMax = std::numeric_limits<Value>::max();
    Value lo = low;
    if (low_bound == Bound::kExclusive) {
      if (low == kMax) return Status::OK();  // (MAX, ...] is empty
      lo = low + 1;
    }
    Value hi;  // exclusive upper
    if (high_bound == Bound::kInclusive) {
      if (high == kMax) {
        // [..., MAX] has no representable exclusive upper bound in the
        // half-open canonical form.
        return Status::InvalidArgument(
            "inclusive upper bound of Value max is not supported");
      }
      hi = high + 1;
    } else {
      hi = high;
    }
    if (lo >= hi) return Status::OK();  // empty interval, e.g. (5, 6) on ints
    return Select(lo, hi, result);
  }

  /// Strategy name, e.g. "crack", "dd1r", "pmdd1r(10%)".
  virtual std::string name() const = 0;

  /// Stages a value for insertion; merged into the data on the next query
  /// whose range covers it (paper Fig. 15 semantics). Default: unsupported.
  virtual Status StageInsert(Value /*v*/) {
    return Status::Unimplemented("updates not supported by " + name());
  }

  /// Stages a value for deletion (lazy, as StageInsert).
  virtual Status StageDelete(Value /*v*/) {
    return Status::Unimplemented("updates not supported by " + name());
  }

  /// Cumulative work counters.
  const EngineStats& stats() const { return stats_; }

  /// Snapshot of the counters that actually describe the work done, for
  /// reporting (harness records, CLI). Wrapper engines whose own stats_ is
  /// deliberately left untouched (ThreadSafeEngine: a mirrored copy would
  /// race with concurrent readers) override this to return the meaningful
  /// counters from the wrapped engine, taken under their lock.
  virtual EngineStats CurrentStats() const { return stats_; }

  /// Internal-consistency check (index invariants against the data). Tests
  /// call this after every query. Default OK for structure-free engines.
  virtual Status Validate() const { return Status::OK(); }

  /// The cracker column this engine reorganizes, for the invariant auditor
  /// (audit/invariant_auditor.h) — read-only, between queries. Engines
  /// without one (scan/sort baselines, hybrids with partition sets,
  /// wrappers over many columns) return nullptr: the auditor then checks
  /// only the stats laws. Decorators forward to the wrapped engine.
  virtual const CrackerColumn* audit_column() const { return nullptr; }

 protected:
  /// Validates a query range: low <= high required.
  static Status CheckRange(Value low, Value high) {
    if (low > high) {
      return Status::InvalidArgument("select range has low > high");
    }
    return Status::OK();
  }

  /// Shared preamble for Execute implementations: validates the query and
  /// the output pointer, and resets *output to a fresh state.
  static Status CheckExecute(const Query& query, QueryOutput* output) {
    SCRACK_RETURN_NOT_OK(CheckQuery(query));
    if (output == nullptr) {
      return Status::InvalidArgument("null query output");
    }
    *output = QueryOutput{};
    return Status::OK();
  }

  /// Validates every query of a batch up front, so batch entry points with
  /// side effects (pending-update hull merges, shard fan-outs) reject an
  /// invalid batch before mutating any state.
  static Status CheckBatch(const std::vector<Query>& queries) {
    for (const Query& query : queries) {
      SCRACK_RETURN_NOT_OK(CheckQuery(query));
    }
    return Status::OK();
  }

  /// Hook run by the default ExecuteBatch after validation and before the
  /// per-query loop. Engines owning a cracker column override it to merge
  /// the batch's pending-update hull once — one intersection pass per
  /// batch instead of one per query (see
  /// CrackerColumn::MergePendingInBatchHull for the semantics).
  virtual Status PrepareBatch(const std::vector<Query>& /*queries*/) {
    return Status::OK();
  }

  EngineStats stats_;
};

}  // namespace scrack
