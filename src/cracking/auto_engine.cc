#include "cracking/auto_engine.h"

namespace scrack {

Status AutoEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;

  const bool use_stochastic = stochastic_countdown_ > 0;
  if (use_stochastic) {
    --stochastic_countdown_;
    ++stochastic_queries_;
  }
  const EndPieceMode mode =
      use_stochastic ? EndPieceMode::kSplitMat : EndPieceMode::kCrack;

  const int64_t touched_before = stats_.tuples_touched;
  SCRACK_RETURN_NOT_OK(column_.SelectWithPolicy(
      low, high, [mode](const Piece&) { return mode; }, result, &stats_));
  const double touched =
      static_cast<double>(stats_.tuples_touched - touched_before);

  // Update the detector. The very first query legitimately touches the
  // whole column (initialization); skip it so a random workload does not
  // start in stochastic mode.
  if (stats_.queries > 1) {
    fast_ewma_ = kFastAlpha * touched + (1 - kFastAlpha) * fast_ewma_;
    slow_ewma_ = kSlowAlpha * touched + (1 - kSlowAlpha) * slow_ewma_;
    const double threshold =
        kPathologicalFraction * static_cast<double>(column_.size());
    const bool large = fast_ewma_ > threshold;
    // Stagnation: recent touched counts are not clearly below the longer
    // average — the workload is not converging on its own.
    const bool stagnant =
        stats_.queries > 4 && fast_ewma_ > kStagnationRatio * slow_ewma_;
    if (large && stagnant && column_.size() > 0) {
      stochastic_countdown_ = kStochasticBurst;
    }
  }
  return Status::OK();
}

}  // namespace scrack
