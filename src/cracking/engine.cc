#include "cracking/engine.h"

namespace scrack {

Status SelectEngine::Execute(const Query& query, QueryOutput* output) {
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  if (query.mode == OutputMode::kMaterialize) {
    return Select(query.low, query.high, &output->result);
  }
  // Default aggregate path: run the ordinary select (so reorganization and
  // update-merge side effects are exactly those of Select) and fold the
  // segments in place. Engines with a cheaper answer override Execute.
  QueryResult scratch;
  SCRACK_RETURN_NOT_OK(Select(query.low, query.high, &scratch));
  FoldResult(scratch, query, output);
  return Status::OK();
}

Status SelectEngine::ExecuteBatch(const std::vector<Query>& queries,
                                  std::vector<QueryOutput>* outputs) {
  if (outputs == nullptr) {
    return Status::InvalidArgument("null batch outputs");
  }
  // Reject an invalid batch before any query runs, so every engine —
  // including ones relying on this default — has atomic validation
  // semantics rather than reorganizing on a prefix of a rejected request.
  SCRACK_RETURN_NOT_OK(CheckBatch(queries));
  SCRACK_RETURN_NOT_OK(PrepareBatch(queries));
  outputs->clear();
  outputs->resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SCRACK_RETURN_NOT_OK(Execute(queries[i], &(*outputs)[i]));
  }
  return Status::OK();
}

}  // namespace scrack
