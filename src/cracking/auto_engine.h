// AutoEngine: dynamic strategy selection (paper §6, future work).
//
// "Another line of improvement lies in combining the strengths of the
// various stochastic cracking algorithms via a dynamic component that
// decides which algorithm to choose for a query on the fly."
//
// AutoEngine implements that component with a simple, robust heuristic on
// the signal the paper's analysis centres on — tuples touched per query:
//   * While the workload behaves (touched counts keep shrinking), use
//     original cracking: it is the cheapest per query and converges
//     fastest on random workloads (Fig. 10).
//   * The sequential-workload signature (Fig. 2e) is *stagnation*: touched
//     counts stay large instead of shrinking. The detector keeps a fast
//     and a slow exponentially-weighted average of per-query touched
//     counts; when the fast average is large AND not meaningfully below
//     the slow one (no downward trend), it switches to MDD1R for a burst
//     of queries, which breaks up exactly the pieces being hammered.
// The result tracks Crack on random workloads (whose touched counts decay
// geometrically, so fast < slow throughout the warmup) and Scrack on
// pathological ones, without workload knowledge.
#pragma once

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

class AutoEngine : public SelectEngine {
 public:
  AutoEngine(const Column* base, const EngineConfig& config)
      : column_(base, config) {}

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override { return "auto"; }

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }
  CrackerColumn& column() { return column_; }

  /// Queries answered stochastically so far (introspection for tests).
  int64_t stochastic_queries() const { return stochastic_queries_; }

 protected:
  /// One pending-update intersection pass for the whole batch.
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  CrackerColumn column_;
  double fast_ewma_ = 0;
  double slow_ewma_ = 0;
  int64_t stochastic_countdown_ = 0;
  int64_t stochastic_queries_ = 0;

  // Heuristic constants: the two EWMA smoothings, the fraction of the
  // column above which touched counts matter at all, the stagnation ratio
  // (fast must stay within this factor of slow to count as "not
  // shrinking"), and how many queries one trigger keeps stochastic mode on.
  static constexpr double kFastAlpha = 0.5;
  static constexpr double kSlowAlpha = 0.1;
  static constexpr double kPathologicalFraction = 0.02;
  static constexpr double kStagnationRatio = 0.75;
  static constexpr int64_t kStochasticBurst = 8;
};

}  // namespace scrack
