// The stochastic cracking engines of paper §4:
//
//   * DataDrivenEngine — DDC, DDR, DD1C, DD1R. Cracks each query bound after
//     first subdividing the containing piece at the median (DDC/DD1C, via
//     Introselect) or at a random element (DDR/DD1R), recursively until the
//     piece fits the L1-sized threshold (DDC/DDR) or just once (DD1C/DD1R).
//   * Mdd1rEngine — MDD1R: one random crack per touched end piece and
//     materialization of the qualifying tuples in the same pass; the
//     query-driven crack is dropped entirely (Fig. 5).
//   * ProgressiveEngine — PMDD1R: MDD1R whose random crack is completed
//     collaboratively by successive queries, bounded by a swap budget of x%
//     of the piece per query (Fig. 9c). P100% degenerates to MDD1R.
#pragma once

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

/// DDC / DDR / DD1C / DD1R, selected by two flags.
class DataDrivenEngine : public SelectEngine {
 public:
  /// center_pivot: median split (DDC family) vs random split (DDR family).
  /// recursive: halve until below threshold (DDC/DDR) vs at most once
  /// (DD1C/DD1R).
  DataDrivenEngine(const Column* base, const EngineConfig& config,
                   bool center_pivot, bool recursive)
      : column_(base, config),
        center_pivot_(center_pivot),
        recursive_(recursive) {}

  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown: the data-driven variants crack on both bounds
  /// (after their auxiliary stochastic cracks) and answer with one
  /// contiguous region, so aggregates come from the piece bounds with no
  /// owned buffers — same reorganization as Select, zero tuple copies.
  Status Execute(const Query& query, QueryOutput* output) override;

  std::string name() const override;

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }
  CrackerColumn& column() { return column_; }

 protected:
  /// One pending-update intersection pass for the whole batch.
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  CrackerColumn column_;
  bool center_pivot_;
  bool recursive_;
};

/// MDD1R (paper Fig. 5). Supports updates via Ripple merging, as used in
/// the Fig. 15 experiment.
class Mdd1rEngine : public SelectEngine {
 public:
  Mdd1rEngine(const Column* base, const EngineConfig& config)
      : column_(base, config) {}

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override { return "mdd1r"; }

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }
  CrackerColumn& column() { return column_; }

 protected:
  /// One pending-update intersection pass for the whole batch.
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  CrackerColumn column_;
};

/// PMDD1R with a configurable swap budget (config.progressive_budget).
class ProgressiveEngine : public SelectEngine {
 public:
  ProgressiveEngine(const Column* base, const EngineConfig& config)
      : column_(base, config) {}

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override;

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }
  CrackerColumn& column() { return column_; }

 protected:
  /// One pending-update intersection pass for the whole batch.
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  CrackerColumn column_;
};

}  // namespace scrack
