// CrackEngine: original database cracking (Idreos et al., CIDR 2007).
//
// Each query's selection bounds drive physical reorganization: the pieces
// the bounds fall into are cracked exactly on the bounds, and the qualifying
// tuples end up contiguous (Fig. 1). Purely query-driven — which is the
// very property whose robustness the paper challenges (§3).
#pragma once

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

class CrackEngine : public SelectEngine {
 public:
  CrackEngine(const Column* base, const EngineConfig& config)
      : column_(base, config) {}

  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown: after cracking on the bounds the answer is one
  /// contiguous piece range, so kCount/kExists come straight from the index
  /// positions (zero tuple reads) and kSum/kMinMax scan the region without
  /// allocating owned buffers.
  Status Execute(const Query& query, QueryOutput* output) override;

  std::string name() const override { return "crack"; }

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }

  /// Test access to the underlying cracked column.
  CrackerColumn& column() { return column_; }

 protected:
  /// Batched execution pays one pending-update intersection pass for the
  /// whole batch's bounding hull.
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  CrackerColumn column_;
};

}  // namespace scrack
