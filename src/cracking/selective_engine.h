// Selective stochastic cracking (paper §4 "Selective Stochastic Cracking"
// and the §5 experiments of Figs. 17-19).
//
// These strategies apply the stochastic action only some of the time, and
// original cracking otherwise, all against one shared cracker column:
//   * FiftyFifty  — stochastic every other query (deterministic alternation);
//   * FlipCoin    — stochastic with probability p per query;
//   * EveryX      — stochastic every X-th query (Fig. 18's sweep);
//   * ScrackMon   — per-piece crack counters; a piece that has absorbed X
//     cracks gets its next crack stochastically, counter reset (Fig. 19);
//   * SizeThreshold — stochastic only for pieces larger than the L1-sized
//     threshold (§5 last paragraph).
// The paper's finding — reproduced by scrack_repro fig17/18/19 — is that
// none of them beats applying stochastic cracking on every query.
#pragma once

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

/// Which selective strategy a SelectiveEngine runs.
enum class SelectivePolicy {
  kFiftyFifty,
  kFlipCoin,
  kEveryX,
  kMonitor,
  kSizeThreshold,
};

class SelectiveEngine : public SelectEngine {
 public:
  SelectiveEngine(const Column* base, const EngineConfig& config,
                  SelectivePolicy policy)
      : column_(base, config), policy_(policy) {}

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override;

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }
  CrackerColumn& column() { return column_; }

 protected:
  /// One pending-update intersection pass for the whole batch.
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  CrackerColumn column_;
  SelectivePolicy policy_;
};

}  // namespace scrack
