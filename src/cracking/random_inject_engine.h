// RandomInjectEngine: the "naive approaches" of paper Fig. 12.
//
// A natural objection to stochastic cracking is "just run random queries now
// and then". RkCrack does exactly that: before every k-th user query it
// forces one extra query with random bounds through plain original cracking
// (R1crack: before every user query; R2crack: every 2nd; ...). The Fig. 12
// experiment shows these improve on plain cracking by an order of magnitude
// but stay an order behind integrated stochastic cracking — the forced
// queries pay full scans without answering anything.
#pragma once

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

class RandomInjectEngine : public SelectEngine {
 public:
  /// Forces one random-range query before every `config.inject_period`-th
  /// user query.
  RandomInjectEngine(const Column* base, const EngineConfig& config)
      : column_(base, config), period_(config.inject_period) {
    SCRACK_CHECK(period_ >= 1);
  }

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override {
    return "r" + std::to_string(period_) + "crack";
  }

  Status Validate() const override { return column_.Validate(); }
  const CrackerColumn* audit_column() const override { return &column_; }

 private:
  CrackerColumn column_;
  int64_t period_;
};

}  // namespace scrack
