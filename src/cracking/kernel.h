// Physical reorganization kernels.
//
// These are the tight loops every cracking algorithm is built from. They are
// deliberately free functions over raw arrays: the paper's point (§2,
// column-stores) is that cracking reorganizes a dense fixed-width array in
// one vectorizable pass. All kernels report work done through KernelCounters
// so engines can account the paper's cost metric — "the amount of data the
// system has to touch for every query" (§3).
#pragma once

#include <utility>
#include <vector>

#include "util/common.h"

namespace scrack {

/// Work counters accumulated by the kernels.
struct KernelCounters {
  int64_t touched = 0;  ///< elements examined
  int64_t swaps = 0;    ///< element exchanges performed

  KernelCounters& operator+=(const KernelCounters& other) {
    touched += other.touched;
    swaps += other.swaps;
    return *this;
  }
};

/// Two-way crack of [begin, end): after the call, elements < pivot occupy
/// [begin, p) and elements >= pivot occupy [p, end), where p is the returned
/// split position. Single pass, stable in cost (touches end-begin elements)
/// but not in order — exactly the cracking select-operator kernel of Fig. 1.
Index CrackInTwo(Value* data, Index begin, Index end, Value pivot,
                 KernelCounters* counters);

/// Three-way crack of [begin, end) for a range query [lo, hi): after the
/// call the layout is
///   [begin, p1) : values <  lo
///   [p1, p2)    : values >= lo and < hi
///   [p2, end)   : values >= hi
/// Returns (p1, p2). This is the single-pass kernel original cracking uses
/// when both query bounds fall into the same uncracked piece (Fig. 1, Q1).
std::pair<Index, Index> CrackInThree(Value* data, Index begin, Index end,
                                     Value lo, Value hi,
                                     KernelCounters* counters);

/// The split_and_materialize kernel of MDD1R (paper Fig. 5): partitions
/// [begin, end) around `pivot` (values < pivot left) while appending every
/// element v with qlo <= v < qhi to `out` in the same pass. Returns the
/// split position.
Index SplitAndMaterialize(Value* data, Index begin, Index end, Value qlo,
                          Value qhi, Value pivot, std::vector<Value>* out,
                          KernelCounters* counters);

/// State advanced by PartialPartition.
struct PartialPartitionResult {
  Index left;     ///< next unprocessed position from the left
  Index right;    ///< next unprocessed position from the right
  bool complete;  ///< true when left > right (partition finished)
};

/// Progressive-cracking kernel: continues a two-way partition of the region
/// [left, right] (inclusive cursors) around `pivot`, performing at most
/// `max_swaps` element exchanges before yielding. Elements left of `left`
/// are already < pivot; elements right of `right` are already >= pivot.
/// A sequence of calls with the returned cursors completes the same
/// partition CrackInTwo would have produced in one go (paper §4,
/// "Progressive Stochastic Cracking").
PartialPartitionResult PartialPartition(Value* data, Index left, Index right,
                                        Value pivot, int64_t max_swaps,
                                        KernelCounters* counters);

/// Filtered materialization: appends every element of [begin, end) with
/// qlo <= v < qhi to `out`. Used by the progressive path, which must answer
/// from pieces whose physical reorganization is still in flight.
void FilterInto(const Value* data, Index begin, Index end, Value qlo,
                Value qhi, std::vector<Value>* out, KernelCounters* counters);

}  // namespace scrack
