// Physical reorganization kernels.
//
// These are the tight loops every cracking algorithm is built from. They are
// deliberately free functions over raw arrays: the paper's point (§2,
// column-stores) is that cracking reorganizes a dense fixed-width array in
// one vectorizable pass. All kernels report work done through KernelCounters
// so engines can account the paper's cost metric — "the amount of data the
// system has to touch for every query" (§3).
//
// Each kernel comes in up to three implementations:
//
//   *Scalar      the original branchy two-cursor loops. On random data their
//                data-dependent branches mispredict ~50% of the time; they
//                are kept as the differential-test oracle and the baseline
//                the bench_kernels speedup numbers are measured against.
//   *Predicated  branch-free: every per-element decision is a conditional
//                move, never a branch, so throughput is independent of the
//                data distribution. CrackInTwo/CrackInThree/
//                SplitAndMaterialize partition out-of-place through a
//                per-thread scratch buffer that is reused across queries.
//   avx2::*      vectorized variants (4 lanes of 64-bit Value per step) in a
//                separate -mavx2 translation unit. Bit-identical to the
//                predicated implementations: same output arrays, same
//                materialization order, same counters.
//
// The undecorated names (CrackInTwo, FilterInto, ...) are the dispatched
// entry points the engines call: they run the AVX2 variant when
// simd::Supported() and the predicated variant otherwise. Because the two
// are bit-identical, dispatch never changes results — only speed.
//
// Layout contracts (identical for predicated and AVX2, which is what makes
// dispatch bit-exact; both may differ from the scalar oracle's historical
// Hoare order, though the partition invariant is always the same):
//
//   CrackInTwo        in-place blocked partition (BlockQuicksort scheme):
//                     branch-free offset gathering per 128-element block,
//                     deferred pair swaps. The swap sequence depends only
//                     on the offset lists, not on how they were computed,
//                     so the scalar and AVX2 gathers yield bit-identical
//                     layouts. Inputs of at most two blocks take the
//                     predicated two-cursor finish directly, which
//                     reproduces the exact Hoare layout.
//   CrackInThree,     out-of-place through the per-thread scratch: below
//   SplitAndMat.      the pivot keeps scan order, at/above the pivot is in
//                     reversed scan order (CrackInThree's middle keeps scan
//                     order in its own region). Deterministic and
//                     independent of vector width.
//
// PartialPartition has no AVX2 variant: its contract is to stop after an
// exact number of element exchanges (the progressive crack budget), which
// serializes the loop. The predicated implementation performs the same
// swaps in the same order as the scalar one — layouts and swap counters are
// bit-identical — and removes the branch mispredictions, which dominate the
// scalar cost on random data.
#pragma once

#include <utility>
#include <vector>

#include "util/common.h"

namespace scrack {

/// Work counters accumulated by the kernels.
struct KernelCounters {
  int64_t touched = 0;  ///< elements examined
  int64_t swaps = 0;    ///< element exchanges performed. The out-of-place
                        ///  kernels (CrackInThree, SplitAndMaterialize)
                        ///  report the Hoare-equivalent exchange count —
                        ///  what the scalar two-cursor kernel would have
                        ///  done; the blocked CrackInTwo reports its actual
                        ///  exchanges, which track the Hoare count to
                        ///  within a block.

  KernelCounters& operator+=(const KernelCounters& other) {
    touched += other.touched;
    swaps += other.swaps;
    return *this;
  }
};

// ------------------------------------------------------------------------
// Dispatched kernels — what the engines call.
// ------------------------------------------------------------------------

/// Two-way crack of [begin, end): after the call, elements < pivot occupy
/// [begin, p) and elements >= pivot occupy [p, end), where p is the returned
/// split position. Single pass, stable in cost (touches end-begin elements)
/// but not in order — exactly the cracking select-operator kernel of Fig. 1.
Index CrackInTwo(Value* data, Index begin, Index end, Value pivot,
                 KernelCounters* counters);

/// Three-way crack of [begin, end) for a range query [lo, hi): after the
/// call the layout is
///   [begin, p1) : values <  lo
///   [p1, p2)    : values >= lo and < hi
///   [p2, end)   : values >= hi
/// Returns (p1, p2). This is the single-pass kernel original cracking uses
/// when both query bounds fall into the same uncracked piece (Fig. 1, Q1).
std::pair<Index, Index> CrackInThree(Value* data, Index begin, Index end,
                                     Value lo, Value hi,
                                     KernelCounters* counters);

/// The split_and_materialize kernel of MDD1R (paper Fig. 5): partitions
/// [begin, end) around `pivot` (values < pivot left) while appending every
/// element v with qlo <= v < qhi to `out` in the same pass. Returns the
/// split position. The dispatched implementation counts the qualifying
/// tuples first and appends into an exactly-sized buffer — no push_back
/// reallocation — in scan order.
Index SplitAndMaterialize(Value* data, Index begin, Index end, Value qlo,
                          Value qhi, Value pivot, std::vector<Value>* out,
                          KernelCounters* counters);

/// State advanced by PartialPartition.
struct PartialPartitionResult {
  Index left;     ///< next unprocessed position from the left
  Index right;    ///< next unprocessed position from the right
  bool complete;  ///< true when left > right (partition finished)
};

/// Progressive-cracking kernel: continues a two-way partition of the region
/// [left, right] (inclusive cursors) around `pivot`, performing at most
/// `max_swaps` element exchanges before yielding. Elements left of `left`
/// are already < pivot; elements right of `right` are already >= pivot.
/// A sequence of calls with the returned cursors completes the same
/// partition CrackInTwo would have produced in one go (paper §4,
/// "Progressive Stochastic Cracking").
///
/// `counters->touched` counts exactly the distinct elements this pass
/// examined (cursor advances plus an examined-but-unpassed boundary element
/// on completion); summed over the passes of one full partition it equals
/// the region size, so progressive cost curves account every element once.
PartialPartitionResult PartialPartition(Value* data, Index left, Index right,
                                        Value pivot, int64_t max_swaps,
                                        KernelCounters* counters);

/// Filtered materialization: appends every element of [begin, end) with
/// qlo <= v < qhi to `out` in scan order. Used by the progressive path,
/// which must answer from pieces whose physical reorganization is still in
/// flight. The dispatched implementation counts first and appends into an
/// exactly-sized buffer.
void FilterInto(const Value* data, Index begin, Index end, Value qlo,
                Value qhi, std::vector<Value>* out, KernelCounters* counters);

// ------------------------------------------------------------------------
// Fold kernels — single-pass aggregates over a raw region, used by the
// ScanEngine pushdown paths. Dispatched like the kernels above.
// ------------------------------------------------------------------------

/// Number of elements v in [begin, end) with qlo <= v < qhi.
Index CountInRange(const Value* data, Index begin, Index end, Value qlo,
                   Value qhi);

struct RangeSum {
  Index count = 0;
  int64_t sum = 0;
};
/// Count and sum of qualifying elements (wrap-around semantics of int64_t
/// addition, identical to the scalar fold).
RangeSum SumInRange(const Value* data, Index begin, Index end, Value qlo,
                    Value qhi);

struct RangeMinMax {
  Index count = 0;
  Value min = 0;  ///< valid only when count > 0
  Value max = 0;  ///< valid only when count > 0
};
RangeMinMax MinMaxInRange(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi);

struct RangePrefixHits {
  Index hits = 0;        ///< qualifying elements found, at most `limit`
  int64_t examined = 0;  ///< prefix length scanned (LIMIT-k early exit)
};
/// Scans forward until `limit` qualifying elements have been seen (or the
/// region ends); `examined` counts elements up to and including the
/// limit-th hit, exactly like the scalar short-circuiting loop. The
/// vectorized implementation early-exits per block and re-scans the final
/// block scalar so `examined` is bit-identical.
RangePrefixHits CountPrefixHits(const Value* data, Index begin, Index end,
                                Value qlo, Value qhi, Index limit);

// ------------------------------------------------------------------------
// Scalar reference implementations (the seed kernels) — differential-test
// oracle and bench baseline.
// ------------------------------------------------------------------------

Index CrackInTwoScalar(Value* data, Index begin, Index end, Value pivot,
                       KernelCounters* counters);
std::pair<Index, Index> CrackInThreeScalar(Value* data, Index begin,
                                           Index end, Value lo, Value hi,
                                           KernelCounters* counters);
Index SplitAndMaterializeScalar(Value* data, Index begin, Index end,
                                Value qlo, Value qhi, Value pivot,
                                std::vector<Value>* out,
                                KernelCounters* counters);
// PartialPartition has no AVX2 tier by contract: its swap budget must cut
// off at an exact element count mid-block, which defeats 4-wide compress
// stores (see kernel_avx2.cc preamble).  lint:allow(kernel-tier-parity)
PartialPartitionResult PartialPartitionScalar(Value* data, Index left,
                                              Index right, Value pivot,
                                              int64_t max_swaps,
                                              KernelCounters* counters);
void FilterIntoScalar(const Value* data, Index begin, Index end, Value qlo,
                      Value qhi, std::vector<Value>* out,
                      KernelCounters* counters);
Index CountInRangeScalar(const Value* data, Index begin, Index end,
                         Value qlo, Value qhi);
RangeSum SumInRangeScalar(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi);
RangeMinMax MinMaxInRangeScalar(const Value* data, Index begin, Index end,
                                Value qlo, Value qhi);
RangePrefixHits CountPrefixHitsScalar(const Value* data, Index begin,
                                      Index end, Value qlo, Value qhi,
                                      Index limit);

// ------------------------------------------------------------------------
// Predicated (branch-free) implementations — the non-AVX2 dispatch target.
// ------------------------------------------------------------------------

Index CrackInTwoPredicated(Value* data, Index begin, Index end, Value pivot,
                           KernelCounters* counters);
std::pair<Index, Index> CrackInThreePredicated(Value* data, Index begin,
                                               Index end, Value lo, Value hi,
                                               KernelCounters* counters);
Index SplitAndMaterializePredicated(Value* data, Index begin, Index end,
                                    Value qlo, Value qhi, Value pivot,
                                    std::vector<Value>* out,
                                    KernelCounters* counters);
PartialPartitionResult PartialPartitionPredicated(Value* data, Index left,
                                                  Index right, Value pivot,
                                                  int64_t max_swaps,
                                                  KernelCounters* counters);
void FilterIntoPredicated(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi, std::vector<Value>* out,
                          KernelCounters* counters);
Index CountInRangePredicated(const Value* data, Index begin, Index end,
                             Value qlo, Value qhi);
RangeSum SumInRangePredicated(const Value* data, Index begin, Index end,
                              Value qlo, Value qhi);
RangeMinMax MinMaxInRangePredicated(const Value* data, Index begin,
                                    Index end, Value qlo, Value qhi);
RangePrefixHits CountPrefixHitsPredicated(const Value* data, Index begin,
                                          Index end, Value qlo, Value qhi,
                                          Index limit);

#if defined(SCRACK_HAVE_AVX2)
// AVX2 implementations (kernel_avx2.cc, compiled with -mavx2). Only safe to
// call when simd::Supported(); the dispatched kernels above check for you.
namespace avx2 {

Index CrackInTwo(Value* data, Index begin, Index end, Value pivot,
                 KernelCounters* counters);
std::pair<Index, Index> CrackInThree(Value* data, Index begin, Index end,
                                     Value lo, Value hi,
                                     KernelCounters* counters);
Index SplitAndMaterialize(Value* data, Index begin, Index end, Value qlo,
                          Value qhi, Value pivot, std::vector<Value>* out,
                          KernelCounters* counters);
void FilterInto(const Value* data, Index begin, Index end, Value qlo,
                Value qhi, std::vector<Value>* out, KernelCounters* counters);
Index CountInRange(const Value* data, Index begin, Index end, Value qlo,
                   Value qhi);
RangeSum SumInRange(const Value* data, Index begin, Index end, Value qlo,
                    Value qhi);
RangeMinMax MinMaxInRange(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi);
RangePrefixHits CountPrefixHits(const Value* data, Index begin, Index end,
                                Value qlo, Value qhi, Index limit);

}  // namespace avx2
#endif  // SCRACK_HAVE_AVX2

}  // namespace scrack
