#include "cracking/kernel.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "cracking/kernel_internal.h"
#include "util/simd.h"

namespace scrack {

using kernel_internal::CountTail;
using kernel_internal::FilterTail;
using kernel_internal::HoareSwapCount;
using kernel_internal::MainScratch;
using kernel_internal::MidScratch;
using kernel_internal::PartitionTailThreeWay;

// ------------------------------------------------------------------------
// Scalar reference kernels (the seed implementations, verbatim).
// ------------------------------------------------------------------------

Index CrackInTwoScalar(Value* data, Index begin, Index end, Value pivot,
                       KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  Index lo = begin;
  Index hi = end - 1;
  int64_t swaps = 0;
  while (lo <= hi) {
    while (lo <= hi && data[lo] < pivot) ++lo;
    while (lo <= hi && data[hi] >= pivot) --hi;
    if (lo < hi) {
      std::swap(data[lo], data[hi]);
      ++lo;
      --hi;
      ++swaps;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return lo;
}

std::pair<Index, Index> CrackInThreeScalar(Value* data, Index begin,
                                           Index end, Value lo, Value hi,
                                           KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  SCRACK_DCHECK(lo <= hi);
  // Dutch-national-flag with two pivots:
  //   [begin, lt) < lo   |   [lt, i) in [lo, hi)   |   [gt, end) >= hi
  Index lt = begin;
  Index i = begin;
  Index gt = end;
  int64_t swaps = 0;
  while (i < gt) {
    if (data[i] < lo) {
      if (lt != i) {
        std::swap(data[lt], data[i]);
        ++swaps;
      }
      ++lt;
      ++i;
    } else if (data[i] >= hi) {
      --gt;
      std::swap(data[i], data[gt]);
      ++swaps;
    } else {
      ++i;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return {lt, gt};
}

Index SplitAndMaterializeScalar(Value* data, Index begin, Index end,
                                Value qlo, Value qhi, Value pivot,
                                std::vector<Value>* out,
                                KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  // Faithful to paper Fig. 5 (split_and_materialize): one pass that both
  // partitions around `pivot` and collects qualifying values.
  Index left = begin;
  Index right = end - 1;
  int64_t swaps = 0;
  while (left <= right) {
    while (left <= right && data[left] < pivot) {
      if (qlo <= data[left] && data[left] < qhi) out->push_back(data[left]);
      ++left;
    }
    while (left <= right && data[right] >= pivot) {
      if (qlo <= data[right] && data[right] < qhi) out->push_back(data[right]);
      --right;
    }
    if (left < right) {
      std::swap(data[left], data[right]);
      ++swaps;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return left;
}

PartialPartitionResult PartialPartitionScalar(Value* data, Index left,
                                              Index right, Value pivot,
                                              int64_t max_swaps,
                                              KernelCounters* counters) {
  SCRACK_DCHECK(max_swaps >= 0);
  int64_t swaps = 0;
  const Index start_left = left;
  const Index start_right = right;
  while (left <= right && swaps < max_swaps) {
    while (left <= right && data[left] < pivot) ++left;
    while (left <= right && data[right] >= pivot) --right;
    if (left < right) {
      std::swap(data[left], data[right]);
      ++left;
      --right;
      ++swaps;
    }
  }
  // Coarse accounting (cursor advances only): the boundary element a scan
  // stopped on is examined but never counted. Kept as the reference for the
  // layout/swap contract; the predicated kernel fixes the accounting.
  counters->touched += (left - start_left) + (start_right - right);
  counters->swaps += swaps;
  return {left, right, left > right};
}

void FilterIntoScalar(const Value* data, Index begin, Index end, Value qlo,
                      Value qhi, std::vector<Value>* out,
                      KernelCounters* counters) {
  for (Index i = begin; i < end; ++i) {
    if (qlo <= data[i] && data[i] < qhi) out->push_back(data[i]);
  }
  counters->touched += end - begin;
}

Index CountInRangeScalar(const Value* data, Index begin, Index end,
                         Value qlo, Value qhi) {
  Index count = 0;
  for (Index i = begin; i < end; ++i) {
    if (qlo <= data[i] && data[i] < qhi) ++count;
  }
  return count;
}

RangeSum SumInRangeScalar(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi) {
  RangeSum r;
  for (Index i = begin; i < end; ++i) {
    if (qlo <= data[i] && data[i] < qhi) {
      ++r.count;
      r.sum += data[i];
    }
  }
  return r;
}

RangeMinMax MinMaxInRangeScalar(const Value* data, Index begin, Index end,
                                Value qlo, Value qhi) {
  RangeMinMax r;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    if (qlo <= v && v < qhi) {
      if (r.count == 0) {
        r.min = v;
        r.max = v;
      } else {
        r.min = std::min(r.min, v);
        r.max = std::max(r.max, v);
      }
      ++r.count;
    }
  }
  return r;
}

RangePrefixHits CountPrefixHitsScalar(const Value* data, Index begin,
                                      Index end, Value qlo, Value qhi,
                                      Index limit) {
  RangePrefixHits r;
  for (Index i = begin; i < end; ++i) {
    ++r.examined;
    const Value v = data[i];
    if (qlo <= v && v < qhi && ++r.hits == limit) break;
  }
  return r;
}

// ------------------------------------------------------------------------
// Predicated (branch-free) kernels.
// ------------------------------------------------------------------------

namespace {

/// Branch-free offset gathers for the blocked in-place partition: the
/// cursor advances by the comparison result, never a branch.
struct GatherGeScalar {
  int operator()(const Value* block, Value pivot, uint8_t* out) const {
    int n = 0;
    for (Index j = 0; j < kernel_internal::kPartitionBlock; ++j) {
      out[n] = static_cast<uint8_t>(j);
      n += (block[j] >= pivot) ? 1 : 0;
    }
    return n;
  }
};

struct GatherLtScalar {
  int operator()(const Value* block, Value pivot, uint8_t* out) const {
    int n = 0;
    for (Index j = 0; j < kernel_internal::kPartitionBlock; ++j) {
      out[n] = static_cast<uint8_t>(j);
      n += (block[j] < pivot) ? 1 : 0;
    }
    return n;
  }
};

}  // namespace

Index CrackInTwoPredicated(Value* data, Index begin, Index end, Value pivot,
                           KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  const Index n = end - begin;
  if (n <= 0) return begin;
  int64_t swaps = 0;
  const Index split = kernel_internal::BlockPartitionTwoWay(
      data, begin, end, pivot, &swaps, GatherGeScalar{}, GatherLtScalar{});
  counters->touched += n;
  counters->swaps += swaps;
  return split;
}

std::pair<Index, Index> CrackInThreePredicated(Value* data, Index begin,
                                               Index end, Value lo, Value hi,
                                               KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  SCRACK_DCHECK(lo <= hi);
  const Index n = end - begin;
  if (n <= 0) return {begin, begin};
  Value* scratch = MainScratch(n);
  Value* mid = MidScratch(n);
  Index a = 0;
  Index ch = n;
  Index b = 0;
  PartitionTailThreeWay(data, begin, end, lo, hi, scratch, mid, &a, &ch, &b);
  // Swap-equivalent work at the two split planes, computed on the original
  // data (still intact; the copy-back below is what overwrites it).
  counters->swaps += HoareSwapCount(data, begin, a, lo) +
                     HoareSwapCount(data, begin, a + b, hi);
  std::memcpy(data + begin, scratch, sizeof(Value) * static_cast<size_t>(a));
  std::memcpy(data + begin + a, mid, sizeof(Value) * static_cast<size_t>(b));
  std::memcpy(data + begin + a + b, scratch + ch,
              sizeof(Value) * static_cast<size_t>(n - ch));
  counters->touched += n;
  return {begin + a, begin + a + b};
}

Index SplitAndMaterializePredicated(Value* data, Index begin, Index end,
                                    Value qlo, Value qhi, Value pivot,
                                    std::vector<Value>* out,
                                    KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  const Index n = end - begin;
  if (n <= 0) return begin;
  Value* scratch = MainScratch(n);
  // Count first, then append into an exactly-sized buffer (one element of
  // slack for the unconditional predicated store).
  const Index hits = CountTail(data, begin, end, qlo, qhi);
  const Index base = static_cast<Index>(out->size());
  out->resize(static_cast<size_t>(base + hits + 1));
  Value* outp = out->data() + base;
  Index lo = 0;
  Index hi = n;
  Index cursor = 0;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    const bool lt = v < pivot;
    const bool hit = qlo <= v && v < qhi;
    scratch[lt ? lo : hi - 1] = v;
    lo += lt ? 1 : 0;
    hi -= lt ? 0 : 1;
    outp[cursor] = v;
    cursor += hit ? 1 : 0;
  }
  SCRACK_DCHECK(cursor == hits);
  counters->swaps += HoareSwapCount(data, begin, lo, pivot);
  std::memcpy(data + begin, scratch, sizeof(Value) * static_cast<size_t>(n));
  out->resize(static_cast<size_t>(base + hits));
  counters->touched += n;
  return begin + lo;
}

PartialPartitionResult PartialPartitionPredicated(Value* data, Index left,
                                                  Index right, Value pivot,
                                                  int64_t max_swaps,
                                                  KernelCounters* counters) {
  SCRACK_DCHECK(max_swaps >= 0);
  const Index start_left = left;
  const Index start_right = right;
  int64_t swaps = 0;
  bool ran = false;
  bool left_stuck = false;
  bool right_stuck = false;
  while (left <= right && swaps < max_swaps) {
    ran = true;
    const Value l = data[left];
    const Value r = data[right];
    const bool l_ok = l < pivot;
    const bool r_ok = r >= pivot;
    const bool exchange = !l_ok && !r_ok;
    // When left == right both stores rewrite the same element with its own
    // value (exchange is false there: exactly one of l_ok/r_ok holds).
    data[left] = exchange ? r : l;
    data[right] = exchange ? l : r;
    const bool adv_l = l_ok || exchange;
    const bool adv_r = r_ok || exchange;
    left += adv_l ? 1 : 0;
    right -= adv_r ? 1 : 0;
    swaps += exchange ? 1 : 0;
    left_stuck = !adv_l;
    right_stuck = !adv_r;
  }
  // Exact accounting of the distinct elements this pass examined. A cursor
  // that advanced past a position examined it; a cursor resting on its
  // final position examined it iff the last iteration left it there (a
  // budget exit always follows a swap, which advances both cursors, so a
  // resting examined cursor only happens on completion). The two cursor
  // ranges can share one boundary position; subtract the overlap.
  if (ran) {
    const Index left_high = left_stuck ? left : left - 1;
    const Index right_low = right_stuck ? right : right + 1;
    int64_t examined = 0;
    if (left_high >= start_left) examined += left_high - start_left + 1;
    if (start_right >= right_low) examined += start_right - right_low + 1;
    const Index overlap_lo = std::max(start_left, right_low);
    const Index overlap_hi = std::min(left_high, start_right);
    if (overlap_hi >= overlap_lo) examined -= overlap_hi - overlap_lo + 1;
    counters->touched += examined;
  }
  counters->swaps += swaps;
  return {left, right, left > right};
}

void FilterIntoPredicated(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi, std::vector<Value>* out,
                          KernelCounters* counters) {
  const Index hits = CountTail(data, begin, end, qlo, qhi);
  const Index base = static_cast<Index>(out->size());
  out->resize(static_cast<size_t>(base + hits + 1));
  Index cursor = base;
  FilterTail(data, begin, end, qlo, qhi, out->data(), &cursor);
  SCRACK_DCHECK(cursor == base + hits);
  out->resize(static_cast<size_t>(base + hits));
  counters->touched += end - begin;
}

Index CountInRangePredicated(const Value* data, Index begin, Index end,
                             Value qlo, Value qhi) {
  return CountTail(data, begin, end, qlo, qhi);
}

RangeSum SumInRangePredicated(const Value* data, Index begin, Index end,
                              Value qlo, Value qhi) {
  RangeSum r;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    const bool hit = qlo <= v && v < qhi;
    r.count += hit ? 1 : 0;
    r.sum += hit ? v : 0;
  }
  return r;
}

RangeMinMax MinMaxInRangePredicated(const Value* data, Index begin,
                                    Index end, Value qlo, Value qhi) {
  // Sentinels coincide with the domain extremes, so a qualifying element
  // equal to a sentinel still yields the correct answer (count > 0 gates
  // validity).
  Value mn = std::numeric_limits<Value>::max();
  Value mx = std::numeric_limits<Value>::min();
  Index count = 0;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    const bool hit = qlo <= v && v < qhi;
    const Value lo_cand = hit ? v : std::numeric_limits<Value>::max();
    const Value hi_cand = hit ? v : std::numeric_limits<Value>::min();
    mn = lo_cand < mn ? lo_cand : mn;
    mx = hi_cand > mx ? hi_cand : mx;
    count += hit ? 1 : 0;
  }
  RangeMinMax r;
  r.count = count;
  if (count > 0) {
    r.min = mn;
    r.max = mx;
  }
  return r;
}

RangePrefixHits CountPrefixHitsPredicated(const Value* data, Index begin,
                                          Index end, Value qlo, Value qhi,
                                          Index limit) {
  RangePrefixHits r;
  kernel_internal::BlockedPrefixHits(
      data, begin, end, qlo, qhi, limit, &r.hits, &r.examined,
      [qlo, qhi](const Value* d, Index b, Index e) {
        return CountTail(d, b, e, qlo, qhi);
      });
  return r;
}

// ------------------------------------------------------------------------
// Dispatch.
// ------------------------------------------------------------------------

Index CrackInTwo(Value* data, Index begin, Index end, Value pivot,
                 KernelCounters* counters) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    return avx2::CrackInTwo(data, begin, end, pivot, counters);
  }
#endif
  return CrackInTwoPredicated(data, begin, end, pivot, counters);
}

std::pair<Index, Index> CrackInThree(Value* data, Index begin, Index end,
                                     Value lo, Value hi,
                                     KernelCounters* counters) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    return avx2::CrackInThree(data, begin, end, lo, hi, counters);
  }
#endif
  return CrackInThreePredicated(data, begin, end, lo, hi, counters);
}

Index SplitAndMaterialize(Value* data, Index begin, Index end, Value qlo,
                          Value qhi, Value pivot, std::vector<Value>* out,
                          KernelCounters* counters) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    return avx2::SplitAndMaterialize(data, begin, end, qlo, qhi, pivot, out,
                                     counters);
  }
#endif
  return SplitAndMaterializePredicated(data, begin, end, qlo, qhi, pivot,
                                       out, counters);
}

PartialPartitionResult PartialPartition(Value* data, Index left, Index right,
                                        Value pivot, int64_t max_swaps,
                                        KernelCounters* counters) {
  // No AVX2 variant: the exact swap budget serializes the loop (kernel.h).
  return PartialPartitionPredicated(data, left, right, pivot, max_swaps,
                                    counters);
}

void FilterInto(const Value* data, Index begin, Index end, Value qlo,
                Value qhi, std::vector<Value>* out,
                KernelCounters* counters) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    avx2::FilterInto(data, begin, end, qlo, qhi, out, counters);
    return;
  }
#endif
  FilterIntoPredicated(data, begin, end, qlo, qhi, out, counters);
}

Index CountInRange(const Value* data, Index begin, Index end, Value qlo,
                   Value qhi) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) return avx2::CountInRange(data, begin, end, qlo, qhi);
#endif
  return CountInRangePredicated(data, begin, end, qlo, qhi);
}

RangeSum SumInRange(const Value* data, Index begin, Index end, Value qlo,
                    Value qhi) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) return avx2::SumInRange(data, begin, end, qlo, qhi);
#endif
  return SumInRangePredicated(data, begin, end, qlo, qhi);
}

RangeMinMax MinMaxInRange(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    return avx2::MinMaxInRange(data, begin, end, qlo, qhi);
  }
#endif
  return MinMaxInRangePredicated(data, begin, end, qlo, qhi);
}

RangePrefixHits CountPrefixHits(const Value* data, Index begin, Index end,
                                Value qlo, Value qhi, Index limit) {
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    return avx2::CountPrefixHits(data, begin, end, qlo, qhi, limit);
  }
#endif
  return CountPrefixHitsPredicated(data, begin, end, qlo, qhi, limit);
}

}  // namespace scrack
