#include "cracking/kernel.h"

#include <algorithm>

namespace scrack {

Index CrackInTwo(Value* data, Index begin, Index end, Value pivot,
                 KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  Index lo = begin;
  Index hi = end - 1;
  int64_t swaps = 0;
  while (lo <= hi) {
    while (lo <= hi && data[lo] < pivot) ++lo;
    while (lo <= hi && data[hi] >= pivot) --hi;
    if (lo < hi) {
      std::swap(data[lo], data[hi]);
      ++lo;
      --hi;
      ++swaps;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return lo;
}

std::pair<Index, Index> CrackInThree(Value* data, Index begin, Index end,
                                     Value lo, Value hi,
                                     KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  SCRACK_DCHECK(lo <= hi);
  // Dutch-national-flag with two pivots:
  //   [begin, lt) < lo   |   [lt, i) in [lo, hi)   |   [gt, end) >= hi
  Index lt = begin;
  Index i = begin;
  Index gt = end;
  int64_t swaps = 0;
  while (i < gt) {
    if (data[i] < lo) {
      if (lt != i) {
        std::swap(data[lt], data[i]);
        ++swaps;
      }
      ++lt;
      ++i;
    } else if (data[i] >= hi) {
      --gt;
      std::swap(data[i], data[gt]);
      ++swaps;
    } else {
      ++i;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return {lt, gt};
}

Index SplitAndMaterialize(Value* data, Index begin, Index end, Value qlo,
                          Value qhi, Value pivot, std::vector<Value>* out,
                          KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  // Faithful to paper Fig. 5 (split_and_materialize): one pass that both
  // partitions around `pivot` and collects qualifying values.
  Index left = begin;
  Index right = end - 1;
  int64_t swaps = 0;
  while (left <= right) {
    while (left <= right && data[left] < pivot) {
      if (qlo <= data[left] && data[left] < qhi) out->push_back(data[left]);
      ++left;
    }
    while (left <= right && data[right] >= pivot) {
      if (qlo <= data[right] && data[right] < qhi) out->push_back(data[right]);
      --right;
    }
    if (left < right) {
      std::swap(data[left], data[right]);
      ++swaps;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return left;
}

PartialPartitionResult PartialPartition(Value* data, Index left, Index right,
                                        Value pivot, int64_t max_swaps,
                                        KernelCounters* counters) {
  SCRACK_DCHECK(max_swaps >= 0);
  int64_t swaps = 0;
  const Index start_left = left;
  const Index start_right = right;
  while (left <= right && swaps < max_swaps) {
    while (left <= right && data[left] < pivot) ++left;
    while (left <= right && data[right] >= pivot) --right;
    if (left < right) {
      std::swap(data[left], data[right]);
      ++left;
      --right;
      ++swaps;
    }
  }
  // Swap budget exhausted with cursors meeting exactly on one element: the
  // loop above exits with left == right only via cursor advances, which
  // classify that element; if it exited on the budget with left == right the
  // element at `left` is still unclassified and the next call handles it.
  counters->touched += (left - start_left) + (start_right - right);
  counters->swaps += swaps;
  return {left, right, left > right};
}

void FilterInto(const Value* data, Index begin, Index end, Value qlo,
                Value qhi, std::vector<Value>* out,
                KernelCounters* counters) {
  for (Index i = begin; i < end; ++i) {
    if (qlo <= data[i] && data[i] < qhi) out->push_back(data[i]);
  }
  counters->touched += end - begin;
}

}  // namespace scrack
