#include "cracking/selective_engine.h"

#include <string>

namespace scrack {

Status SelectiveEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  const int64_t query_number = stats_.queries++;
  const EngineConfig& config = column_.config();

  BoundPolicy policy;
  switch (policy_) {
    case SelectivePolicy::kFiftyFifty:
    case SelectivePolicy::kEveryX: {
      const int64_t period =
          policy_ == SelectivePolicy::kFiftyFifty ? 2 : config.every_x;
      const EndPieceMode mode = (query_number % period == 0)
                                    ? EndPieceMode::kSplitMat
                                    : EndPieceMode::kCrack;
      policy = [mode](const Piece&) { return mode; };
      break;
    }
    case SelectivePolicy::kFlipCoin: {
      const EndPieceMode mode = column_.rng().Coin(config.flip_probability)
                                    ? EndPieceMode::kSplitMat
                                    : EndPieceMode::kCrack;
      policy = [mode](const Piece&) { return mode; };
      break;
    }
    case SelectivePolicy::kMonitor: {
      // ScrackMon: count cracks per piece; once a piece has absorbed
      // `monitor_threshold` cracks, its next crack is stochastic and the
      // counter resets. New pieces inherit their parent's counter
      // (CrackerIndex::AddCrack).
      CrackerColumn* column = &column_;
      const int64_t threshold = config.monitor_threshold;
      policy = [column, threshold](const Piece& piece) {
        PieceMeta& meta = column->index().MetaFor(piece.meta_key);
        ++meta.crack_count;
        if (meta.crack_count >= threshold) {
          meta.crack_count = 0;
          return EndPieceMode::kSplitMat;
        }
        return EndPieceMode::kCrack;
      };
      break;
    }
    case SelectivePolicy::kSizeThreshold: {
      const Index threshold = config.crack_threshold_values;
      policy = [threshold](const Piece& piece) {
        return piece.size() > threshold ? EndPieceMode::kSplitMat
                                        : EndPieceMode::kCrack;
      };
      break;
    }
  }
  return column_.SelectWithPolicy(low, high, policy, result, &stats_);
}

std::string SelectiveEngine::name() const {
  const EngineConfig& config = column_.config();
  switch (policy_) {
    case SelectivePolicy::kFiftyFifty:
      return "fiftyfifty";
    case SelectivePolicy::kFlipCoin:
      return "flipcoin";
    case SelectivePolicy::kEveryX:
      return "everyx(" + std::to_string(config.every_x) + ")";
    case SelectivePolicy::kMonitor:
      return "scrackmon(" + std::to_string(config.monitor_threshold) + ")";
    case SelectivePolicy::kSizeThreshold:
      return "sizesel";
  }
  return "selective";
}

}  // namespace scrack
