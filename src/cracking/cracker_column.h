// CrackerColumn: one attribute's cracker column plus every reorganization
// primitive the cracking algorithms are composed from.
//
// Design: all cracking variants in the paper differ only in *how they treat
// the two end pieces* a range query touches (crack on the bound, random
// split with materialization, progressive split, median split...) — the rest
// (piece lookup, middle views, pending-update merging, bookkeeping) is
// shared. CrackerColumn owns that shared state and exposes the primitives;
// the engine classes in *_engine.h are thin policies over it. This is what
// lets the selective strategies (FiftyFifty, FlipCoin, ScrackMon) mix
// original and stochastic actions on the same column, exactly as in §4/§5.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "audit/writer_tag.h"
#include "cracking/engine.h"
#include "cracking/kernel.h"
#include "cracking/kernel_parallel.h"
#include "index/cracker_index.h"
#include "storage/column.h"
#include "storage/pending_updates.h"
#include "storage/query_result.h"
#include "util/rng.h"

namespace scrack {

/// How to treat an end piece that a query bound falls into.
enum class EndPieceMode {
  kCrack,        ///< original cracking: crack exactly on the bound
  kSplitMat,     ///< MDD1R: one random crack, materialize qualifying tuples
  kProgressive,  ///< PMDD1R: budgeted partial random crack + filtered scan
};

/// Decides the EndPieceMode for a bound, given the piece it falls in. The
/// callback may mutate piece metadata (ScrackMon counters do).
using BoundPolicy = std::function<EndPieceMode(const Piece&)>;

/// The cracker column: a private reorganizable copy of the base column, its
/// cracker index, pending updates, and an Rng for stochastic choices.
///
/// Initialization is lazy: the copy of the base data happens inside the
/// first Select, so the first query carries the full initialization cost,
/// as it does in a cracking DBMS (§3: "Q1 needs to analyze all tuples").
class CrackerColumn {
 public:
  /// `base` must outlive this object. Copies nothing until the first query.
  CrackerColumn(const Column* base, const EngineConfig& config);

  bool initialized() const { return initialized_; }

  /// Copies the base column into the cracker column (no-op after the first
  /// call). Records min/max for bound shortcuts.
  void EnsureInitialized(EngineStats* stats);

  Value* data() { return data_.data(); }
  const Value* data() const { return data_.data(); }
  Index size() const { return static_cast<Index>(data_.size()); }

  CrackerIndex& index() { return index_; }
  const CrackerIndex& index() const { return index_; }
  Rng& rng() { return rng_; }
  const EngineConfig& config() const { return config_; }
  PendingUpdates& pending() { return pending_; }
  const PendingUpdates& pending() const { return pending_; }

  /// Single-writer race detector over the mutating entry points. A
  /// correctly synchronized program keeps violations() at 0; the invariant
  /// auditor reports anything else (see audit/writer_tag.h).
  const WriterTag& writer_tag() const { return writer_tag_; }
  WriterTag& writer_tag() { return writer_tag_; }

  // ----------------------------------------------------------------------
  // Query primitives
  // ----------------------------------------------------------------------

  /// Generic range select [low, high): merges qualifying pending updates,
  /// then handles each end piece according to `policy`, assembling the
  /// result as (left materialization) + (middle view) + (right
  /// materialization). Original cracking, MDD1R, progressive cracking and
  /// all selective mixtures are instances of this routine.
  Status SelectWithPolicy(Value low, Value high, const BoundPolicy& policy,
                          QueryResult* result, EngineStats* stats);

  /// Original cracking: ensures a crack exists at bound v (cracking the
  /// containing piece if needed) and returns its position.
  Index CrackBound(Value v, EngineStats* stats);

  /// Aggregate-pushdown primitive: reorganizes exactly as original
  /// cracking's Select would (pending merge, same-piece crack-in-three fast
  /// path, crack on each bound) but hands back the contiguous region
  /// [*begin, *end) holding every qualifying tuple instead of assembling a
  /// QueryResult. kCount/kExists aggregates read *begin/*end alone — zero
  /// tuple accesses — and kSum/kMinMax scan the region copying nothing.
  Status CrackRange(Value low, Value high, Index* begin, Index* end,
                    EngineStats* stats);

  /// Read-only probe behind the epoch engine's reader/writer classification:
  /// true iff a Select over [low, high) would reorganize nothing — both
  /// bounds already resolve to crack positions (or fall outside the stored
  /// min/max), and no staged update intersects the range, so the answer is
  /// a pure read of the region ReadRegion() reports. Never cracks, never
  /// merges, never initializes a lazy column (an uninitialized non-empty
  /// column still owes its first-touch copy). Concurrent callers are safe
  /// only while no writer runs and the pending pools are sorted — the epoch
  /// engine re-sorts them under its exclusive lock after every stage (see
  /// src/parallel/epoch_engine.h).
  bool CanAnswerWithoutReorg(Value low, Value high) const;

  /// The contiguous region [*begin, *end) holding exactly the qualifying
  /// tuples for [low, high), valid only when CanAnswerWithoutReorg(low,
  /// high) is true (the bounds resolve without cracking). Const sibling of
  /// CrackRange for the shared-read path.
  void ReadRegion(Value low, Value high, Index* begin, Index* end) const;

  /// Aggregate fold over a region produced by CrackRange (every element
  /// qualifies for [low, high)): same results as the free AggregateRegion
  /// helper, but kSum/kMinMax folds over regions past the parallel cutover
  /// run on the multi-threaded fold kernels.
  void AggregateCrackedRegion(Index begin, Index end, const Query& query,
                              QueryOutput* output, EngineStats* stats);

  /// Effective parallel cutover in values (config/env/L3 resolution) and
  /// whether a piece of `n` values takes the parallel kernels. Exposed for
  /// tests asserting the threshold boundary.
  Index parallel_min_values() const { return parallel_min_values_; }
  bool UsesParallel(Index n) const {
    return parallel_.pool != nullptr && parallel_.max_concurrency > 1 &&
           n >= parallel_min_values_;
  }

  // ----------------------------------------------------------------------
  // Budgeted progressive cracking (prog(B,<inner>), src/progressive/)
  // ----------------------------------------------------------------------

  /// Outcome of one AdvanceBudgetedCrack call.
  struct BudgetedCrackOutcome {
    bool resolved = false;  ///< a crack at v now exists; pos is its position
    Index pos = 0;
    Index remaining = 0;  ///< unsettled span still owed for v (0 if resolved)
  };

  /// Budgeted original cracking: spends at most *allowance element
  /// exchanges working toward a crack at bound v, decrementing *allowance
  /// by the swaps actually performed. Partition state (pivot + inclusive
  /// cursors) persists in the piece metadata, so a later call — for v or
  /// for any other bound landing in the same piece — resumes where this
  /// one stopped; the completed partition is the one CrackInTwo would have
  /// produced in one go, so the final piece layout is identical to
  /// unbudgeted cracking. Pieces of at most budget_small_piece_values()
  /// are cracked to completion: with eager_small they may overdraw the
  /// allowance (*allowance can go negative — the bounded per-query slack),
  /// without it they are only cracked when the allowance covers the piece.
  BudgetedCrackOutcome AdvanceBudgetedCrack(Value v, bool eager_small,
                                            int64_t* allowance,
                                            EngineStats* stats);

  /// One query bound AdvanceBudgetedCrack could not resolve, reported so
  /// the budgeted engine can enqueue it for lazy completion.
  struct DeferredBound {
    bool deferred = false;
    Value value = 0;
    Index remaining = 0;  ///< unsettled span of the piece holding the bound
  };

  /// Budgeted Select: reorganizes like original cracking but spends at most
  /// *allowance swaps (plus the small-piece slack); bounds the budget could
  /// not crack are answered by filtering their piece with the scan kernels
  /// (scan_fallback_tuples counts those reads) and reported through
  /// low_deferred / high_deferred. Answers are the same multiset of tuples
  /// unbudgeted cracking returns.
  Status BudgetedSelect(Value low, Value high, int64_t* allowance,
                        DeferredBound* low_deferred,
                        DeferredBound* high_deferred, QueryResult* result,
                        EngineStats* stats);

  /// Aggregate sibling of BudgetedSelect: folds unresolved end pieces with
  /// the range-filtered fold kernels, the settled middle with the cracked-
  /// region folds, and merges the partials (same values as an unbudgeted
  /// CrackRange + AggregateCrackedRegion). kMaterialize is not handled
  /// here — the engine routes it through BudgetedSelect.
  Status BudgetedAggregate(const Query& query, int64_t* allowance,
                           DeferredBound* low_deferred,
                           DeferredBound* high_deferred, QueryOutput* output,
                           EngineStats* stats);

  /// Effective small-piece cutoff (config.budget_small_piece_values, else
  /// config.crack_threshold_values).
  Index budget_small_piece_values() const {
    return config_.budget_small_piece_values > 0
               ? config_.budget_small_piece_values
               : config_.crack_threshold_values;
  }

  /// DDC/DDR/DD1C/DD1R bound handling (paper Fig. 4 and its variants):
  /// recursively (or once, if !recursive) splits the piece containing v —
  /// at the median if center_pivot, else at a random element — until it is
  /// at most config.crack_threshold_values large, then cracks on v itself.
  /// Returns the position of the crack at v.
  Index StochasticCrackBound(Value v, bool center_pivot, bool recursive,
                             EngineStats* stats);

  // ----------------------------------------------------------------------
  // Updates (Ripple merging, paper Fig. 15 / SIGMOD'07 semantics)
  // ----------------------------------------------------------------------

  void StageInsert(Value v) {
    WriterGuard writer(&writer_tag_);
    pending_.StageInsert(v);
  }
  void StageDelete(Value v) {
    WriterGuard writer(&writer_tag_);
    pending_.StageDelete(v);
  }

  /// Merges every pending update whose value lies in [low, high) into the
  /// cracker column via Ripple shifts. Called by SelectWithPolicy before
  /// answering; also callable directly.
  Status MergePendingIn(Value low, Value high, EngineStats* stats);

  /// ExecuteBatch preamble: merges every pending update inside the batch's
  /// bounding hull up front, so the per-query merges see an empty pool and
  /// the batch pays one intersection pass instead of one per query.
  /// Merging a wider range than any single query touches never changes an
  /// answer — an update only affects queries whose range covers its value,
  /// and those would have merged it anyway. One observable difference from
  /// sequential execution: a staged delete of an absent value fails the
  /// batch if the *hull* covers it, where one-by-one execution only fails
  /// once some query's own range does (or never, if none ever covers it).
  Status MergePendingInBatchHull(const std::vector<Query>& queries,
                                 EngineStats* stats);

  /// Ripple-inserts one value: one displaced tuple per piece boundary above
  /// v, plus index position shifts. O(#pieces above v).
  void RippleInsert(Value v, EngineStats* stats);

  /// Ripple-deletes one occurrence of v. NotFound if v is absent.
  Status RippleDelete(Value v, EngineStats* stats);

  // ----------------------------------------------------------------------
  // Hybrid (partition/merge) support
  // ----------------------------------------------------------------------

  /// Physically removes every value in [low, high) from the column,
  /// appending them to `out` in storage order. Ensures cracks exist at the
  /// range bounds first (cracking if necessary), then closes the gap and
  /// remaps the index. Used by the AICC/AICS initial partitions, which move
  /// qualifying ranges into the final adaptive area.
  void ExtractRange(Value low, Value high, std::vector<Value>* out,
                    EngineStats* stats);

  /// As ExtractRange, but first applies one DD1R-style random crack to the
  /// pieces holding each bound — the stochastic element of AICC1R/AICS1R.
  void ExtractRange1R(Value low, Value high, std::vector<Value>* out,
                      EngineStats* stats);

  // ----------------------------------------------------------------------
  // Introspection
  // ----------------------------------------------------------------------

  /// Full invariant check: index structure valid, every element within its
  /// piece's bounds, no pending progressive state on small pieces. O(n).
  Status Validate() const;

  /// Summary of the current piece-size distribution — the physical shape
  /// of convergence (§3: performance follows how finely the touched region
  /// is partitioned). O(#pieces log #pieces).
  struct PieceDistribution {
    size_t num_pieces = 0;
    Index min_size = 0;
    Index median_size = 0;
    Index max_size = 0;
    double mean_size = 0;
  };
  PieceDistribution DescribePieces() const;

  Value min_value() const { return min_value_; }
  Value max_value() const { return max_value_; }

 private:
  // Adaptive kernel dispatch: pieces past the parallel cutover run the
  // multi-threaded partition kernels, everything else the sequential
  // dispatched ones. Answers, split positions, and touched counters are
  // identical either way; these helpers also maintain the parallel_cracks
  // and threads_used stats.
  Index PartitionTwo(Index begin, Index end, Value pivot,
                     KernelCounters* counters, EngineStats* stats);
  std::pair<Index, Index> PartitionThree(Index begin, Index end, Value lo,
                                         Value hi, KernelCounters* counters,
                                         EngineStats* stats);
  void FilterPiece(Index begin, Index end, Value qlo, Value qhi,
                   std::vector<Value>* out, KernelCounters* counters,
                   EngineStats* stats);
  void NoteParallelPass(Index n, EngineStats* stats);

  // Handles the piece containing bound `v` per `mode`. Appends any
  // materialized tuples to `result`. Sets *view_edge to the position where
  // the contiguous (view) part of the answer starts (for the low bound) or
  // ends (for the high bound). `is_low_bound` selects which edge of the
  // piece the view abuts.
  void HandleEndPiece(Value v, Value qlo, Value qhi, EndPieceMode mode,
                      bool is_low_bound, Index* view_edge,
                      QueryResult* result, EngineStats* stats);

  // MDD1R's split_and_materialize on `piece`, registering the random crack.
  void SplitMatPiece(const Piece& piece, Value qlo, Value qhi,
                     QueryResult* result, EngineStats* stats);

  // Range-filtered fold over one uncracked piece region for the budgeted
  // aggregate path (the piece may hold non-qualifying values, unlike
  // AggregateCrackedRegion's all-qualify contract). Merges into *output
  // via MergePartial semantics.
  void FoldPieceInRange(Index begin, Index end, const Query& query,
                        QueryOutput* output, EngineStats* stats);

  // Progressive continuation on `piece` (budgeted partial partition +
  // filtered materialization of the whole piece).
  void ProgressivePiece(const Piece& piece, Value qlo, Value qhi,
                        QueryResult* result, EngineStats* stats);

  // Registers a crack, tolerating duplicates (returns false if it already
  // existed) and folding the stats bookkeeping.
  bool AddCrack(Value v, Index pos, EngineStats* stats);

  const Column* base_;
  EngineConfig config_;
  ParallelContext parallel_;        // pool null when parallelism is off
  Index parallel_min_values_ = 0;   // resolved cutover (config/env/L3)
  bool parallel_in_place_ = false;  // resolved memory-constrained mode
  bool initialized_ = false;
  std::vector<Value> data_;
  CrackerIndex index_;
  PendingUpdates pending_;
  WriterTag writer_tag_;
  Rng rng_;
  Value min_value_ = 0;
  Value max_value_ = -1;  // empty column: min > max
};

}  // namespace scrack
