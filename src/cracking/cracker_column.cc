#include "cracking/cracker_column.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/cache_info.h"
#include "util/fault.h"
#include "util/introselect.h"

namespace scrack {

namespace {

// Resolution order for the parallel cutover: SCRACK_PARALLEL_THRESHOLD
// (values) > config.parallel_min_values > detected L3 size. Env and cache
// detection are read once per process.
Index ResolveParallelMinValues(const EngineConfig& config) {
  static const Index env_threshold = [] {
    const char* env = std::getenv("SCRACK_PARALLEL_THRESHOLD");
    if (env != nullptr && *env != '\0') {
      const long long v = std::strtoll(env, nullptr, 10);
      if (v > 0) return static_cast<Index>(v);
    }
    return Index{0};
  }();
  if (env_threshold > 0) return env_threshold;
  if (config.parallel_min_values > 0) return config.parallel_min_values;
  static const Index l3_values = CacheInfo::Detect().L3Values();
  return l3_values;
}

bool ResolveParallelInPlace(const EngineConfig& config) {
  static const bool env_in_place = [] {
    const char* env = std::getenv("SCRACK_PARALLEL_INPLACE");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return env_in_place || config.parallel_in_place;
}

}  // namespace

CrackerColumn::CrackerColumn(const Column* base, const EngineConfig& config)
    : base_(base),
      config_(config),
      index_(0),
      rng_(config.seed),
      min_value_(std::numeric_limits<Value>::max()),
      max_value_(std::numeric_limits<Value>::min()) {
  SCRACK_CHECK(base_ != nullptr);
  SCRACK_CHECK(config_.crack_threshold_values >= 1);
  SCRACK_CHECK(config_.progressive_budget > 0.0 &&
               config_.progressive_budget <= 1.0);
  parallel_.max_concurrency = config_.parallel_threads;
  if (config_.parallel_threads > 1) {
    parallel_.pool = &ThreadPool::Shared();
    parallel_min_values_ = ResolveParallelMinValues(config_);
    parallel_in_place_ = ResolveParallelInPlace(config_);
  }
}

void CrackerColumn::NoteParallelPass(Index n, EngineStats* stats) {
  ++stats->parallel_cracks;
  stats->threads_used = std::max<int64_t>(
      stats->threads_used, EffectiveConcurrency(parallel_, n));
}

Index CrackerColumn::PartitionTwo(Index begin, Index end, Value pivot,
                                  KernelCounters* counters,
                                  EngineStats* stats) {
  if (UsesParallel(end - begin)) {
    NoteParallelPass(end - begin, stats);
    return parallel_in_place_
               ? ParallelCrackInTwoInPlace(data(), begin, end, pivot,
                                           parallel_, counters)
               : ParallelCrackInTwo(data(), begin, end, pivot, parallel_,
                                    counters);
  }
  return CrackInTwo(data(), begin, end, pivot, counters);
}

std::pair<Index, Index> CrackerColumn::PartitionThree(Index begin, Index end,
                                                      Value lo, Value hi,
                                                      KernelCounters* counters,
                                                      EngineStats* stats) {
  if (UsesParallel(end - begin)) {
    NoteParallelPass(end - begin, stats);
    return ParallelCrackInThree(data(), begin, end, lo, hi, parallel_,
                                counters);
  }
  return CrackInThree(data(), begin, end, lo, hi, counters);
}

void CrackerColumn::FilterPiece(Index begin, Index end, Value qlo, Value qhi,
                                std::vector<Value>* out,
                                KernelCounters* counters,
                                EngineStats* stats) {
  // Filtered materialization allocates the result buffer; an armed fault
  // here models that allocation failing (column state is untouched).
  SCRACK_FAULT_POINT("alloc");
  if (UsesParallel(end - begin)) {
    NoteParallelPass(end - begin, stats);
    ParallelFilterInto(data(), begin, end, qlo, qhi, out, parallel_,
                       counters);
    return;
  }
  FilterInto(data(), begin, end, qlo, qhi, out, counters);
}

void CrackerColumn::AggregateCrackedRegion(Index begin, Index end,
                                           const Query& query,
                                           QueryOutput* output,
                                           EngineStats* stats) {
  const Index n = end > begin ? end - begin : 0;
  const bool reads_tuples =
      query.mode == OutputMode::kSum || query.mode == OutputMode::kMinMax;
  if (!reads_tuples || !UsesParallel(n)) {
    AggregateRegion(data(), begin, end, query, output,
                    &stats->tuples_touched);
    return;
  }
  // Every element of a CrackRange region lies in [query.low, query.high),
  // so the range-filtered parallel folds reduce to unfiltered folds here
  // and match the sequential AggregateRegion exactly.
  NoteParallelPass(n, stats);
  if (query.mode == OutputMode::kSum) {
    const RangeSum sum = ParallelSumInRange(data(), begin, end, query.low,
                                            query.high, parallel_);
    output->count = n;
    output->sum = sum.sum;
  } else {
    const RangeMinMax mm = ParallelMinMaxInRange(data(), begin, end,
                                                 query.low, query.high,
                                                 parallel_);
    output->count = n;
    if (n > 0) {
      output->min = mm.min;
      output->max = mm.max;
    }
  }
  stats->tuples_touched += n;
}

void CrackerColumn::EnsureInitialized(EngineStats* stats) {
  if (initialized_) return;
  WriterGuard writer(&writer_tag_);
  // The first-touch copy is the column's largest single allocation; an
  // armed fault here models OOM before any state has changed.
  SCRACK_FAULT_POINT("alloc");
  const Index n = base_->size();
  data_.resize(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const Value v = (*base_)[i];
    data_[static_cast<size_t>(i)] = v;
    min_value_ = std::min(min_value_, v);
    max_value_ = std::max(max_value_, v);
  }
  index_ = CrackerIndex(n);
  initialized_ = true;
  // The copy is part of the first query's cost, as in a cracking DBMS where
  // the cracker column materializes on first touch.
  stats->tuples_touched += n;
}

bool CrackerColumn::AddCrack(Value v, Index pos, EngineStats* stats) {
  // Aborting before the index mutation is always invariant-preserving: the
  // partition work that produced `pos` only permuted values within their
  // piece, which the piece-partition law tolerates without the crack.
  SCRACK_FAULT_POINT("register");
  if (index_.AddCrack(v, pos)) {
    ++stats->cracks;
    return true;
  }
  return false;
}

Index CrackerColumn::CrackBound(Value v, EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  if (index_.HasCrack(v)) return index_.CrackPosition(v);
  const Piece piece = index_.FindPiece(v);
  SCRACK_FAULT_POINT("partition");
  KernelCounters counters;
  const Index split =
      PartitionTwo(piece.begin, piece.end, v, &counters, stats);
  stats->tuples_touched += counters.touched;
  stats->swaps += counters.swaps;
  AddCrack(v, split, stats);
  return split;
}

Status CrackerColumn::CrackRange(Value low, Value high, Index* begin,
                                 Index* end, EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  *begin = 0;
  *end = 0;
  EnsureInitialized(stats);
  SCRACK_RETURN_NOT_OK(MergePendingIn(low, high, stats));
  if (size() == 0 || low >= high) return Status::OK();

  // Same-piece fast path, mirroring SelectWithPolicy's kCrack branch: both
  // uncracked bounds in one piece take a single crack-in-three pass, so the
  // physical reorganization matches Select query for query.
  const bool low_exact = low <= min_value_ || index_.HasCrack(low);
  const bool high_exact = high > max_value_ || index_.HasCrack(high);
  if (!low_exact && !high_exact) {
    const Piece piece = index_.FindPiece(low);
    if (!piece.has_upper || high < piece.upper) {
      KernelCounters counters;
      const auto [p1, p2] =
          PartitionThree(piece.begin, piece.end, low, high, &counters, stats);
      stats->tuples_touched += counters.touched;
      stats->swaps += counters.swaps;
      AddCrack(low, p1, stats);
      AddCrack(high, p2, stats);
      *begin = p1;
      *end = p2;
      return Status::OK();
    }
  }

  *begin = low <= min_value_ ? 0 : CrackBound(low, stats);
  *end = high > max_value_ ? size() : CrackBound(high, stats);
  if (*end < *begin) *end = *begin;
  return Status::OK();
}

CrackerColumn::BudgetedCrackOutcome CrackerColumn::AdvanceBudgetedCrack(
    Value v, bool eager_small, int64_t* allowance, EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  const Index cutoff = budget_small_piece_values();
  for (;;) {
    if (v <= min_value_) return {true, 0, 0};
    if (v > max_value_) return {true, size(), 0};
    if (index_.HasCrack(v)) return {true, index_.CrackPosition(v), 0};

    const Piece piece = index_.FindPiece(v);
    PieceMeta& meta = index_.MetaFor(piece.meta_key);
    ProgressiveCrack& pc = meta.progressive;
    if (!pc.active) {
      if (piece.size() <= cutoff) {
        // Small piece: finish it in one pass rather than carry partition
        // state for a cache-resident region. Only the current query's own
        // bounds may overdraw the allowance (the bounded per-query slack);
        // the lazy drain path waits until the allowance covers the piece.
        if (!eager_small && *allowance < piece.size()) {
          return {false, 0, piece.size()};
        }
        SCRACK_FAULT_POINT("partition");
        KernelCounters counters;
        const Index split =
            PartitionTwo(piece.begin, piece.end, v, &counters, stats);
        stats->tuples_touched += counters.touched;
        stats->swaps += counters.swaps;
        *allowance -= counters.swaps;
        AddCrack(v, split, stats);
        continue;  // resolves at the top of the loop
      }
      if (*allowance <= 0) return {false, 0, piece.size()};
      pc.active = true;
      pc.pivot = v;
      pc.left = piece.begin;
      pc.right = piece.end - 1;
    }
    // Continue the piece's in-flight partition. Its pivot may be v itself
    // or an earlier deferred bound that never finished — either way the
    // piece carries one partition at a time, so finish it first. The
    // left > right guard resumes cleanly when a fault unwound between the
    // partition completing and the crack registering.
    while (pc.left <= pc.right && *allowance > 0) {
      SCRACK_FAULT_POINT("slice");
      KernelCounters counters;
      const PartialPartitionResult part = PartialPartition(
          data(), pc.left, pc.right, pc.pivot, *allowance, &counters);
      pc.left = part.left;
      pc.right = part.right;
      stats->tuples_touched += counters.touched;
      stats->swaps += counters.swaps;
      *allowance -= counters.swaps;
      if (part.complete) break;
    }
    if (pc.left <= pc.right) {
      return {false, 0, pc.right - pc.left + 1};
    }
    const Value pivot = pc.pivot;
    const Index split = pc.left;
    pc = ProgressiveCrack{};  // deactivate before the index grows
    AddCrack(pivot, split, stats);
    // v is now either cracked (pivot == v) or confined to a smaller piece.
  }
}

Status CrackerColumn::BudgetedSelect(Value low, Value high,
                                     int64_t* allowance,
                                     DeferredBound* low_deferred,
                                     DeferredBound* high_deferred,
                                     QueryResult* result,
                                     EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  *low_deferred = DeferredBound{};
  *high_deferred = DeferredBound{};
  EnsureInitialized(stats);
  SCRACK_RETURN_NOT_OK(MergePendingIn(low, high, stats));
  if (size() == 0 || low >= high) return Status::OK();

  const BudgetedCrackOutcome lo =
      AdvanceBudgetedCrack(low, /*eager_small=*/true, allowance, stats);
  const BudgetedCrackOutcome hi =
      AdvanceBudgetedCrack(high, /*eager_small=*/true, allowance, stats);

  // Piece lookups must run after both advances — either may have split the
  // other bound's piece.
  Piece lo_piece{};
  Piece hi_piece{};
  if (!lo.resolved) lo_piece = index_.FindPiece(low);
  if (!hi.resolved) hi_piece = index_.FindPiece(high);
  const bool same_piece =
      !lo.resolved && !hi.resolved && lo_piece.begin == hi_piece.begin;

  const Index view_begin = lo.resolved ? lo.pos : lo_piece.end;
  const Index view_end = hi.resolved ? hi.pos : hi_piece.begin;

  // Scan fallback: the uncracked end pieces are the only regions that can
  // hold qualifying tuples outside the settled middle; filter them with
  // the dispatched kernels. Same multiset of tuples as cracking would
  // return, no reorganization.
  if (!lo.resolved) {
    KernelCounters counters;
    std::vector<Value> out;
    FilterPiece(lo_piece.begin, lo_piece.end, low, high, &out, &counters,
                stats);
    stats->tuples_touched += counters.touched;
    stats->scan_fallback_tuples += lo_piece.size();
    stats->materialized += static_cast<int64_t>(out.size());
    result->AddOwned(std::move(out));
    *low_deferred = DeferredBound{true, low, lo.remaining};
  }
  if (!hi.resolved) {
    if (!same_piece) {
      KernelCounters counters;
      std::vector<Value> out;
      FilterPiece(hi_piece.begin, hi_piece.end, low, high, &out, &counters,
                  stats);
      stats->tuples_touched += counters.touched;
      stats->scan_fallback_tuples += hi_piece.size();
      stats->materialized += static_cast<int64_t>(out.size());
      result->AddOwned(std::move(out));
    }
    *high_deferred = DeferredBound{true, high, hi.remaining};
  }

  if (view_end > view_begin) {
    result->AddView(data() + view_begin, view_end - view_begin);
  }
  return Status::OK();
}

Status CrackerColumn::BudgetedAggregate(const Query& query,
                                        int64_t* allowance,
                                        DeferredBound* low_deferred,
                                        DeferredBound* high_deferred,
                                        QueryOutput* output,
                                        EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  *low_deferred = DeferredBound{};
  *high_deferred = DeferredBound{};
  EnsureInitialized(stats);
  SCRACK_RETURN_NOT_OK(MergePendingIn(query.low, query.high, stats));
  if (size() == 0 || query.low >= query.high) return Status::OK();

  const BudgetedCrackOutcome lo =
      AdvanceBudgetedCrack(query.low, /*eager_small=*/true, allowance, stats);
  const BudgetedCrackOutcome hi =
      AdvanceBudgetedCrack(query.high, /*eager_small=*/true, allowance,
                           stats);

  Piece lo_piece{};
  Piece hi_piece{};
  if (!lo.resolved) lo_piece = index_.FindPiece(query.low);
  if (!hi.resolved) hi_piece = index_.FindPiece(query.high);
  const bool same_piece =
      !lo.resolved && !hi.resolved && lo_piece.begin == hi_piece.begin;

  const Index view_begin = lo.resolved ? lo.pos : lo_piece.end;
  const Index view_end = hi.resolved ? hi.pos : hi_piece.begin;

  // The settled middle is all-qualifying; the unresolved end pieces take
  // the range-filtered folds. Every partial follows the QueryOutput
  // conventions, so MergePartial reproduces the single-region answer
  // exactly (int64 addition is commutative; kExists counts stay capped).
  if (view_end > view_begin) {
    QueryOutput middle;
    AggregateCrackedRegion(view_begin, view_end, query, &middle, stats);
    MergePartial(query, middle, output);
  }
  if (!lo.resolved) {
    FoldPieceInRange(lo_piece.begin, lo_piece.end, query, output, stats);
    *low_deferred = DeferredBound{true, query.low, lo.remaining};
  }
  if (!hi.resolved) {
    if (!same_piece) {
      FoldPieceInRange(hi_piece.begin, hi_piece.end, query, output, stats);
    }
    *high_deferred = DeferredBound{true, query.high, hi.remaining};
  }
  return Status::OK();
}

void CrackerColumn::FoldPieceInRange(Index begin, Index end,
                                     const Query& query, QueryOutput* output,
                                     EngineStats* stats) {
  const Index n = end > begin ? end - begin : 0;
  if (n == 0) return;
  QueryOutput partial;
  switch (query.mode) {
    case OutputMode::kMaterialize:
      return;  // the engine routes materialization through BudgetedSelect
    case OutputMode::kCount: {
      if (UsesParallel(n)) {
        NoteParallelPass(n, stats);
        partial.count = ParallelCountInRange(data(), begin, end, query.low,
                                             query.high, parallel_);
      } else {
        partial.count =
            CountInRange(data(), begin, end, query.low, query.high);
      }
      stats->tuples_touched += n;
      stats->scan_fallback_tuples += n;
      break;
    }
    case OutputMode::kSum: {
      RangeSum sum;
      if (UsesParallel(n)) {
        NoteParallelPass(n, stats);
        sum = ParallelSumInRange(data(), begin, end, query.low, query.high,
                                 parallel_);
      } else {
        sum = SumInRange(data(), begin, end, query.low, query.high);
      }
      partial.count = sum.count;
      partial.sum = sum.sum;
      stats->tuples_touched += n;
      stats->scan_fallback_tuples += n;
      break;
    }
    case OutputMode::kMinMax: {
      RangeMinMax mm;
      if (UsesParallel(n)) {
        NoteParallelPass(n, stats);
        mm = ParallelMinMaxInRange(data(), begin, end, query.low, query.high,
                                   parallel_);
      } else {
        mm = MinMaxInRange(data(), begin, end, query.low, query.high);
      }
      partial.count = mm.count;
      if (mm.count > 0) {
        partial.min = mm.min;
        partial.max = mm.max;
      }
      stats->tuples_touched += n;
      stats->scan_fallback_tuples += n;
      break;
    }
    case OutputMode::kExists: {
      const RangePrefixHits hits = CountPrefixHits(
          data(), begin, end, query.low, query.high, query.limit);
      partial.count = std::min(hits.hits, query.limit);
      partial.exists = hits.hits >= query.limit;
      stats->tuples_touched += hits.examined;
      stats->scan_fallback_tuples += hits.examined;
      break;
    }
  }
  MergePartial(query, partial, output);
}

bool CrackerColumn::CanAnswerWithoutReorg(Value low, Value high) const {
  // A lazy column that has data waiting still owes its first-touch copy.
  if (!initialized_) return base_->size() == 0;
  if (low >= high || size() == 0) return true;   // empty result, no work
  if (high <= min_value_ || low > max_value_) return true;
  const bool low_resolved = low <= min_value_ || index_.HasCrack(low);
  const bool high_resolved = high > max_value_ || index_.HasCrack(high);
  if (!low_resolved || !high_resolved) return false;
  // A staged update inside the range would Ripple-merge on the next Select.
  return !pending_.IntersectsRange(low, high);
}

void CrackerColumn::ReadRegion(Value low, Value high, Index* begin,
                               Index* end) const {
  *begin = 0;
  *end = 0;
  if (!initialized_ || size() == 0 || low >= high) return;
  if (high <= min_value_ || low > max_value_) return;
  *begin = low <= min_value_ ? 0 : index_.CrackPosition(low);
  *end = high > max_value_ ? size() : index_.CrackPosition(high);
  if (*end < *begin) *end = *begin;
}

Index CrackerColumn::StochasticCrackBound(Value v, bool center_pivot,
                                          bool recursive,
                                          EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  if (index_.HasCrack(v)) return index_.CrackPosition(v);
  if (v <= min_value_) return 0;
  if (v > max_value_) return size();

  Piece piece = index_.FindPiece(v);
  while (piece.size() > config_.crack_threshold_values) {
    KernelCounters counters;
    Value pivot;
    Index split;
    if (center_pivot) {
      // DDC / DD1C: split at the median, found by Introselect (paper §4).
      const SelectionResult sel = IntroselectPartition(
          data(), piece.begin, piece.end, piece.begin + piece.size() / 2);
      pivot = sel.value;
      split = sel.eq_begin;
      counters.touched += piece.size();
    } else {
      // DDR / DD1R: split at a random element of the piece.
      const Index r = rng_.UniformIndex(piece.begin, piece.end - 1);
      pivot = data()[r];
      ++stats->random_pivots;
      split =
          PartitionTwo(piece.begin, piece.end, pivot, &counters, stats);
    }
    stats->tuples_touched += counters.touched;
    stats->swaps += counters.swaps;
    if (!AddCrack(pivot, split, stats)) {
      // The pivot coincides with the piece's lower bound (e.g. a piece of
      // equal values): no further subdivision is possible.
      break;
    }
    const Piece next = index_.FindPiece(v);
    if (next.size() >= piece.size()) break;  // no progress — degenerate data
    piece = next;
    if (!recursive) break;  // DD1C / DD1R: at most one auxiliary crack
  }

  // Final, query-driven crack on v itself (the auxiliary crack may have
  // landed exactly on v).
  if (index_.HasCrack(v)) return index_.CrackPosition(v);
  piece = index_.FindPiece(v);
  KernelCounters counters;
  const Index split =
      PartitionTwo(piece.begin, piece.end, v, &counters, stats);
  stats->tuples_touched += counters.touched;
  stats->swaps += counters.swaps;
  AddCrack(v, split, stats);
  return split;
}

void CrackerColumn::SplitMatPiece(const Piece& piece, Value qlo, Value qhi,
                                  QueryResult* result, EngineStats* stats) {
  if (piece.size() == 0) return;
  const Index r = rng_.UniformIndex(piece.begin, piece.end - 1);
  const Value pivot = data()[r];
  ++stats->random_pivots;
  KernelCounters counters;
  std::vector<Value> out;
  const Index split = SplitAndMaterialize(data(), piece.begin, piece.end, qlo,
                                          qhi, pivot, &out, &counters);
  stats->tuples_touched += counters.touched;
  stats->swaps += counters.swaps;
  AddCrack(pivot, split, stats);  // duplicate pivot: piece stays whole
  stats->materialized += static_cast<int64_t>(out.size());
  result->AddOwned(std::move(out));
}

void CrackerColumn::ProgressivePiece(const Piece& piece, Value qlo, Value qhi,
                                     QueryResult* result,
                                     EngineStats* stats) {
  if (piece.size() == 0) return;
  PieceMeta& meta = index_.MetaFor(piece.meta_key);
  ProgressiveCrack& pc = meta.progressive;
  if (!pc.active) {
    pc.active = true;
    const Index r = rng_.UniformIndex(piece.begin, piece.end - 1);
    pc.pivot = data()[r];
    pc.left = piece.begin;
    pc.right = piece.end - 1;
    ++stats->random_pivots;
  }
  const int64_t budget = std::max<int64_t>(
      1, static_cast<int64_t>(config_.progressive_budget *
                              static_cast<double>(piece.size())));
  KernelCounters counters;
  const PartialPartitionResult part =
      PartialPartition(data(), pc.left, pc.right, pc.pivot, budget, &counters);
  pc.left = part.left;
  pc.right = part.right;
  if (part.complete) {
    const Value pivot = pc.pivot;
    const Index split = part.left;
    pc = ProgressiveCrack{};  // deactivate before splitting the piece
    AddCrack(pivot, split, stats);
  }
  // Answer the query from the piece regardless of partition progress: the
  // whole piece is still the only region that can hold qualifying values.
  std::vector<Value> out;
  FilterPiece(piece.begin, piece.end, qlo, qhi, &out, &counters, stats);
  stats->tuples_touched += counters.touched;
  stats->swaps += counters.swaps;
  stats->materialized += static_cast<int64_t>(out.size());
  result->AddOwned(std::move(out));
}

void CrackerColumn::HandleEndPiece(Value v, Value qlo, Value qhi,
                                   EndPieceMode mode, bool is_low_bound,
                                   Index* view_edge, QueryResult* result,
                                   EngineStats* stats) {
  const Piece piece = index_.FindPiece(v);
  switch (mode) {
    case EndPieceMode::kCrack:
      *view_edge = CrackBound(v, stats);
      return;
    case EndPieceMode::kSplitMat:
      SplitMatPiece(piece, qlo, qhi, result, stats);
      break;
    case EndPieceMode::kProgressive:
      if (piece.size() > config_.progressive_min_values) {
        ProgressivePiece(piece, qlo, qhi, result, stats);
      } else {
        // Below the L2 threshold full MDD1R takes over (paper §4).
        SplitMatPiece(piece, qlo, qhi, result, stats);
      }
      break;
  }
  // Qualifying tuples of this piece were materialized; the contiguous part
  // of the answer starts after (low bound) or ends before (high bound) it.
  *view_edge = is_low_bound ? piece.end : piece.begin;
}

Status CrackerColumn::SelectWithPolicy(Value low, Value high,
                                       const BoundPolicy& policy,
                                       QueryResult* result,
                                       EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  SCRACK_RETURN_NOT_OK(MergePendingIn(low, high, stats));
  if (size() == 0 || low >= high) return Status::OK();

  const bool low_exact = low <= min_value_ || index_.HasCrack(low);
  const bool high_exact = high > max_value_ || index_.HasCrack(high);

  // Fast path: both bounds fall uncracked into the same piece. Original
  // cracking handles this with one crack-in-three pass (Fig. 1, Q1); the
  // stochastic modes handle the piece once (Fig. 5, P1 == P2).
  if (!low_exact && !high_exact) {
    const Piece piece = index_.FindPiece(low);
    const bool same_piece = !piece.has_upper || high < piece.upper;
    if (same_piece) {
      switch (policy(piece)) {
        case EndPieceMode::kCrack: {
          KernelCounters counters;
          const auto [p1, p2] = PartitionThree(piece.begin, piece.end, low,
                                               high, &counters, stats);
          stats->tuples_touched += counters.touched;
          stats->swaps += counters.swaps;
          AddCrack(low, p1, stats);
          AddCrack(high, p2, stats);
          result->AddView(data() + p1, p2 - p1);
          return Status::OK();
        }
        case EndPieceMode::kSplitMat:
          SplitMatPiece(piece, low, high, result, stats);
          return Status::OK();
        case EndPieceMode::kProgressive:
          if (piece.size() > config_.progressive_min_values) {
            ProgressivePiece(piece, low, high, result, stats);
          } else {
            SplitMatPiece(piece, low, high, result, stats);
          }
          return Status::OK();
      }
    }
  }

  // General path: handle the two end pieces independently, then emit the
  // middle as a zero-copy view (Fig. 6).
  Index view_begin = 0;
  if (low <= min_value_) {
    view_begin = 0;
  } else if (index_.HasCrack(low)) {
    view_begin = index_.CrackPosition(low);
  } else {
    const Piece piece = index_.FindPiece(low);
    HandleEndPiece(low, low, high, policy(piece), /*is_low_bound=*/true,
                   &view_begin, result, stats);
  }

  Index view_end = size();
  if (high > max_value_) {
    view_end = size();
  } else if (index_.HasCrack(high)) {
    view_end = index_.CrackPosition(high);
  } else {
    const Piece piece = index_.FindPiece(high);
    HandleEndPiece(high, low, high, policy(piece), /*is_low_bound=*/false,
                   &view_end, result, stats);
  }

  if (view_end > view_begin) {
    result->AddView(data() + view_begin, view_end - view_begin);
  }
  return Status::OK();
}

Status CrackerColumn::MergePendingIn(Value low, Value high,
                                     EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  if (pending_.empty()) return Status::OK();
  EnsureInitialized(stats);
  // Abort here, before updates leave the pending pools: once TakeInsertsIn
  // has run, an unwound merge would lose staged values.
  SCRACK_FAULT_POINT("merge");
  std::vector<Value> inserts = pending_.TakeInsertsIn(low, high);
  std::vector<Value> deletes = pending_.TakeDeletesIn(low, high);
  if (inserts.empty() && deletes.empty()) return Status::OK();
  // Ripple shifts invalidate the position cursors of in-flight progressive
  // cracks; abandon them (the partial work is lost, correctness is not).
  index_.DeactivateAllProgressive();
  for (Value v : inserts) {
    RippleInsert(v, stats);
  }
  for (Value v : deletes) {
    SCRACK_RETURN_NOT_OK(RippleDelete(v, stats));
  }
  return Status::OK();
}

Status CrackerColumn::MergePendingInBatchHull(
    const std::vector<Query>& queries, EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  Value lo;
  Value hi;
  if (!QueryHull(queries, &lo, &hi)) return Status::OK();
  return MergePendingIn(lo, hi, stats);
}

void CrackerColumn::RippleInsert(Value v, EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  const Index old_size = size();
  data_.push_back(v);  // placeholder; overwritten unless v goes last
  // One displaced tuple per piece boundary above v, highest boundary first.
  const std::vector<CrackerIndex::Entry> cracks = index_.CracksAbove(v);
  Index hole = old_size;
  for (auto it = cracks.rbegin(); it != cracks.rend(); ++it) {
    data_[static_cast<size_t>(hole)] = data_[static_cast<size_t>(it->pos)];
    hole = it->pos;
  }
  data_[static_cast<size_t>(hole)] = v;
  index_.ShiftAbove(v, +1);
  min_value_ = std::min(min_value_, v);
  max_value_ = std::max(max_value_, v);
  ++stats->updates_merged;
  stats->tuples_touched += static_cast<int64_t>(cracks.size()) + 1;
}

Status CrackerColumn::RippleDelete(Value v, EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  const Piece piece = index_.FindPiece(v);
  Index hole = -1;
  for (Index i = piece.begin; i < piece.end; ++i) {
    ++stats->tuples_touched;
    if (data()[i] == v) {
      hole = i;
      break;
    }
  }
  if (hole < 0) {
    return Status::NotFound("delete of absent value " + std::to_string(v));
  }
  // Close the hole by pulling the last element of each region downward,
  // region ends being the crack boundaries above v plus the column end.
  const std::vector<CrackerIndex::Entry> cracks = index_.CracksAbove(v);
  for (const CrackerIndex::Entry& crack : cracks) {
    if (hole != crack.pos - 1) {
      data_[static_cast<size_t>(hole)] =
          data_[static_cast<size_t>(crack.pos - 1)];
    }
    hole = crack.pos - 1;
    ++stats->tuples_touched;
  }
  if (hole != size() - 1) {
    data_[static_cast<size_t>(hole)] = data_[static_cast<size_t>(size() - 1)];
  }
  data_.pop_back();
  index_.ShiftAbove(v, -1);
  ++stats->updates_merged;
  return Status::OK();
}

void CrackerColumn::ExtractRange(Value low, Value high,
                                 std::vector<Value>* out,
                                 EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  if (size() == 0 || low >= high) return;
  const Index pos_low = low <= min_value_ ? 0 : CrackBound(low, stats);
  const Index pos_high = high > max_value_ ? size() : CrackBound(high, stats);
  if (pos_high <= pos_low) return;
  const Index count = pos_high - pos_low;
  out->insert(out->end(), data() + pos_low, data() + pos_high);
  data_.erase(data_.begin() + pos_low, data_.begin() + pos_high);
  index_.CollapseRange(low, high, pos_low, count);
  // Moving out `count` tuples and closing the gap touches the tail.
  stats->tuples_touched += count + (size() - pos_low);
}

void CrackerColumn::ExtractRange1R(Value low, Value high,
                                   std::vector<Value>* out,
                                   EngineStats* stats) {
  WriterGuard writer(&writer_tag_);
  EnsureInitialized(stats);
  if (size() == 0 || low >= high) return;
  // One random crack in each bound's piece before the query-driven cracks —
  // the DD1R logic grafted into the hybrid's initial partitions.
  if (low > min_value_ && low <= max_value_) {
    StochasticCrackBound(low, /*center_pivot=*/false, /*recursive=*/false,
                         stats);
  }
  if (high > min_value_ && high <= max_value_) {
    StochasticCrackBound(high, /*center_pivot=*/false, /*recursive=*/false,
                         stats);
  }
  ExtractRange(low, high, out, stats);
}

CrackerColumn::PieceDistribution CrackerColumn::DescribePieces() const {
  PieceDistribution dist;
  if (!initialized_) return dist;
  std::vector<Index> sizes;
  index_.ForEachPiece(
      [&](const Piece& piece) { sizes.push_back(piece.size()); });
  if (sizes.empty()) return dist;
  std::sort(sizes.begin(), sizes.end());
  dist.num_pieces = sizes.size();
  dist.min_size = sizes.front();
  dist.max_size = sizes.back();
  dist.median_size = sizes[sizes.size() / 2];
  int64_t total = 0;
  for (Index s : sizes) total += s;
  dist.mean_size =
      static_cast<double>(total) / static_cast<double>(sizes.size());
  return dist;
}

Status CrackerColumn::Validate() const {
  if (!initialized_) return Status::OK();
  SCRACK_RETURN_NOT_OK(index_.Validate(data(), size()));
  // Progressive-crack states must describe a genuine partial partition.
  Status status = Status::OK();
  index_.ForEachPiece([&](const Piece& piece) {
    if (!status.ok()) return;
    const PieceMeta* meta = index_.FindMeta(piece.meta_key);
    if (meta == nullptr || !meta->progressive.active) return;
    const ProgressiveCrack& pc = meta->progressive;
    if (pc.left < piece.begin || pc.right >= piece.end) {
      status = Status::Internal("progressive cursors outside piece");
      return;
    }
    for (Index i = piece.begin; i < pc.left; ++i) {
      if (data()[i] >= pc.pivot) {
        status = Status::Internal("settled-left element >= pivot");
        return;
      }
    }
    for (Index i = pc.right + 1; i < piece.end; ++i) {
      if (data()[i] < pc.pivot) {
        status = Status::Internal("settled-right element < pivot");
        return;
      }
    }
  });
  return status;
}

}  // namespace scrack
