// SortEngine: the full-index baseline.
//
// Sorts the whole column inside the first query ("we completely sort the
// column with the first query", §3), then answers every query with a binary
// search and a zero-copy view. The price is the heavy first query that
// adaptive indexing exists to avoid; the payoff is optimal per-query cost
// afterwards.
#pragma once

#include <vector>

#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

class SortEngine : public SelectEngine {
 public:
  /// `base` must outlive the engine; nothing is copied until the first
  /// query (the sort is the first query's cost).
  SortEngine(const Column* base, const EngineConfig& config);

  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown: two binary searches bound the qualifying run;
  /// kCount/kExists are pure position arithmetic and kMinMax reads the two
  /// run endpoints (the run is sorted). Only kSum scans the run.
  Status Execute(const Query& query, QueryOutput* output) override;

  std::string name() const override { return "sort"; }

  /// Updates maintain sortedness by shifting (O(n) per update).
  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;

  Status Validate() const override;

 private:
  void EnsureSorted();

  const Column* base_;
  bool sorted_ = false;
  std::vector<Value> data_;
  std::vector<Value> pre_init_inserts_;
  std::vector<Value> pre_init_deletes_;
};

}  // namespace scrack
