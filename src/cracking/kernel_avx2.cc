// AVX2 kernels: 4 lanes of 64-bit Value per step.
//
// This translation unit is compiled with -mavx2 (see CMakeLists.txt,
// SCRACK_ENABLE_AVX2) and must only be *executed* behind simd::Supported();
// the dispatchers in kernel.cc take care of that. Nothing here is allowed
// to change results: every kernel produces bit-identical output arrays,
// materialization order, and counters to its *Predicated sibling, by
// construction — the deterministic layout contract (stable scan order below
// the pivot, reversed scan order at/above it) does not depend on vector
// width, and all tails run the exact scalar loops from kernel_internal.h.
//
// Vectorization scheme: compare → 4-bit lane mask (movemask on the 64-bit
// sign lanes) → table-driven vpermd shuffle that packs selected lanes to
// the front (or unselected lanes, reversed, to the back) → full-vector
// store. Full stores spill up to 3 garbage lanes past the packed prefix;
// the partition loops keep an 8-element gap between the two output cursors
// so the garbage always lands in not-yet-valid scratch cells, and the
// append buffers carry kSimdSlack extra elements that are trimmed after.
#include "cracking/kernel.h"

#if !defined(__AVX2__)
#error "kernel_avx2.cc must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "cracking/kernel_internal.h"

namespace scrack {
namespace avx2 {
namespace {

using kernel_internal::CountTail;
using kernel_internal::FilterTail;
using kernel_internal::kSimdSlack;
using kernel_internal::MainScratch;
using kernel_internal::MidScratch;
using kernel_internal::PartitionTailThreeWay;

// vpermd index tables for every 4-bit lane mask. left[m] packs the lanes
// set in m to the front in ascending lane order; right[m] packs the lanes
// NOT set in m to the back in descending lane order (so a full store at
// (cursor - 4) lays them out in reversed scan order, matching the scalar
// back-to-front writes). Entries are 32-bit lane indices: 64-bit lane j is
// the pair (2j, 2j+1).
struct PermTables {
  alignas(32) int32_t left[16][8];
  alignas(32) int32_t right[16][8];
  int32_t pop[16];

  PermTables() {
    for (int m = 0; m < 16; ++m) {
      int idx = 0;
      int selected = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (m & (1 << lane)) {
          left[m][idx++] = 2 * lane;
          left[m][idx++] = 2 * lane + 1;
          ++selected;
        }
      }
      while (idx < 8) left[m][idx++] = 0;
      pop[m] = selected;

      for (int s = 0; s < 8; ++s) right[m][s] = 0;
      int slot = selected;  // first 64-bit slot of the packed suffix
      for (int lane = 3; lane >= 0; --lane) {
        if (!(m & (1 << lane))) {
          right[m][2 * slot] = 2 * lane;
          right[m][2 * slot + 1] = 2 * lane + 1;
          ++slot;
        }
      }
    }
  }
};

const PermTables& Tables() {
  static const PermTables tables;
  return tables;
}

inline __m256i LoadPerm(const int32_t (&row)[8]) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(row));
}

inline int MoveMask64(__m256i lanes) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(lanes));
}

/// All-ones per 64-bit lane where qlo <= v < qhi. The v >= qlo side is
/// computed as NOT (qlo > v) via andnot, so qlo == INT64_MIN needs no
/// off-by-one adjustment.
inline __m256i QualifyMask(__m256i v, __m256i qlo, __m256i qhi) {
  return _mm256_andnot_si256(_mm256_cmpgt_epi64(qlo, v),
                             _mm256_cmpgt_epi64(qhi, v));
}

inline int64_t HorizontalSum(__m256i acc) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/// Number of elements < pivot in [data, data + n).
int64_t CountLt(const Value* data, Index n, Value pivot) {
  const __m256i piv = _mm256_set1_epi64x(pivot);
  __m256i acc = _mm256_setzero_si256();
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(piv, v));
  }
  int64_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += data[i] < pivot ? 1 : 0;
  return count;
}

/// Hoare-equivalent swap count (kernel_internal::HoareSwapCount, same
/// result): elements >= pivot in the original prefix of length split_len.
inline int64_t SwapEquivalent(const Value* data, Index begin, Index split_len,
                              Value pivot) {
  return split_len - CountLt(data + begin, split_len, pivot);
}

Index CountQualifying(const Value* data, Index begin, Index end, Value qlo,
                      Value qhi) {
  const __m256i qlov = _mm256_set1_epi64x(qlo);
  const __m256i qhiv = _mm256_set1_epi64x(qhi);
  __m256i acc = _mm256_setzero_si256();
  Index i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = _mm256_sub_epi64(acc, QualifyMask(v, qlov, qhiv));
  }
  return static_cast<Index>(HorizontalSum(acc)) + CountTail(data, i, end, qlo, qhi);
}

}  // namespace

namespace {

// Byte-offset table for the blocked partition's offset gather: lut[m] holds
// the ascending 64-bit-lane indices set in the 4-bit mask m, one per byte,
// packed little-endian into a uint32 word.
struct OffsetLut {
  uint32_t word[16];
  int pop[16];
  OffsetLut() {
    for (int m = 0; m < 16; ++m) {
      uint32_t w = 0;
      int n = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (m & (1 << lane)) {
          w |= static_cast<uint32_t>(lane) << (8 * n);
          ++n;
        }
      }
      word[m] = w;
      pop[m] = n;
    }
  }
};

const OffsetLut& Offsets() {
  static const OffsetLut lut;
  return lut;
}

/// AVX2 offset gathers: same offset lists as the scalar predicated gathers
/// (ascending positions of matching elements), produced 4 lanes at a time
/// via movemask + table lookup.
struct GatherGeAvx2 {
  int operator()(const Value* block, Value pivot, uint8_t* out) const {
    const OffsetLut& lut = Offsets();
    const __m256i piv = _mm256_set1_epi64x(pivot);
    int n = 0;
    for (Index j = 0; j < kernel_internal::kPartitionBlock; j += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + j));
      const int m = 0xF & ~MoveMask64(_mm256_cmpgt_epi64(piv, v));  // v >= p
      const uint32_t w =
          lut.word[m] + 0x01010101u * static_cast<uint32_t>(j);
      std::memcpy(out + n, &w, sizeof(w));  // 8 bytes of slack in `out`
      n += lut.pop[m];
    }
    return n;
  }
};

struct GatherLtAvx2 {
  int operator()(const Value* block, Value pivot, uint8_t* out) const {
    const OffsetLut& lut = Offsets();
    const __m256i piv = _mm256_set1_epi64x(pivot);
    int n = 0;
    for (Index j = 0; j < kernel_internal::kPartitionBlock; j += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + j));
      const int m = MoveMask64(_mm256_cmpgt_epi64(piv, v));  // v < p
      const uint32_t w =
          lut.word[m] + 0x01010101u * static_cast<uint32_t>(j);
      std::memcpy(out + n, &w, sizeof(w));
      n += lut.pop[m];
    }
    return n;
  }
};

}  // namespace

Index CrackInTwo(Value* data, Index begin, Index end, Value pivot,
                 KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  const Index n = end - begin;
  if (n <= 0) return begin;
  int64_t swaps = 0;
  const Index split = kernel_internal::BlockPartitionTwoWay(
      data, begin, end, pivot, &swaps, GatherGeAvx2{}, GatherLtAvx2{});
  counters->touched += n;
  counters->swaps += swaps;
  return split;
}

std::pair<Index, Index> CrackInThree(Value* data, Index begin, Index end,
                                     Value lo, Value hi,
                                     KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  SCRACK_DCHECK(lo <= hi);
  const Index n = end - begin;
  if (n <= 0) return {begin, begin};
  Value* scratch = MainScratch(n);
  Value* mid = MidScratch(n + kSimdSlack);
  const PermTables& t = Tables();
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  Index a = 0;
  Index ch = n;
  Index b = 0;
  Index i = begin;
  // The A/C gap shrinks only by the A and C lanes of each vector; middle
  // elements go to the separate mid buffer (kSimdSlack covers its spill).
  while (i + 4 <= end && ch - a >= 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const int ma = MoveMask64(_mm256_cmpgt_epi64(lov, v));        // v < lo
    const int mnot_c = MoveMask64(_mm256_cmpgt_epi64(hiv, v));    // v < hi
    const int mc = 0xF & ~mnot_c;                                 // v >= hi
    const int mb = 0xF & ~(ma | mc);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(scratch + a),
                        _mm256_permutevar8x32_epi32(v, LoadPerm(t.left[ma])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mid + b),
                        _mm256_permutevar8x32_epi32(v, LoadPerm(t.left[mb])));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(scratch + ch - 4),
        _mm256_permutevar8x32_epi32(v, LoadPerm(t.right[0xF ^ mc])));
    a += t.pop[ma];
    b += t.pop[mb];
    ch -= t.pop[mc];
    i += 4;
  }
  PartitionTailThreeWay(data, i, end, lo, hi, scratch, mid, &a, &ch, &b);
  counters->swaps += SwapEquivalent(data, begin, a, lo) +
                     SwapEquivalent(data, begin, a + b, hi);
  std::memcpy(data + begin, scratch, sizeof(Value) * static_cast<size_t>(a));
  std::memcpy(data + begin + a, mid, sizeof(Value) * static_cast<size_t>(b));
  std::memcpy(data + begin + a + b, scratch + ch,
              sizeof(Value) * static_cast<size_t>(n - ch));
  counters->touched += n;
  return {begin + a, begin + a + b};
}

Index SplitAndMaterialize(Value* data, Index begin, Index end, Value qlo,
                          Value qhi, Value pivot, std::vector<Value>* out,
                          KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  const Index n = end - begin;
  if (n <= 0) return begin;
  Value* scratch = MainScratch(n);
  const Index hits = CountQualifying(data, begin, end, qlo, qhi);
  const Index base = static_cast<Index>(out->size());
  out->resize(static_cast<size_t>(base + hits + kSimdSlack));
  Value* outp = out->data() + base;
  const PermTables& t = Tables();
  const __m256i piv = _mm256_set1_epi64x(pivot);
  const __m256i qlov = _mm256_set1_epi64x(qlo);
  const __m256i qhiv = _mm256_set1_epi64x(qhi);
  Index lo = 0;
  Index hi = n;
  Index cursor = 0;
  Index i = begin;
  while (end - i >= 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const int m = MoveMask64(_mm256_cmpgt_epi64(piv, v));
    const int mq = MoveMask64(QualifyMask(v, qlov, qhiv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(scratch + lo),
                        _mm256_permutevar8x32_epi32(v, LoadPerm(t.left[m])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(scratch + hi - 4),
                        _mm256_permutevar8x32_epi32(v, LoadPerm(t.right[m])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(outp + cursor),
                        _mm256_permutevar8x32_epi32(v, LoadPerm(t.left[mq])));
    lo += t.pop[m];
    hi -= 4 - t.pop[m];
    cursor += t.pop[mq];
    i += 4;
  }
  for (; i < end; ++i) {
    const Value v = data[i];
    const bool lt = v < pivot;
    const bool hit = qlo <= v && v < qhi;
    scratch[lt ? lo : hi - 1] = v;
    lo += lt ? 1 : 0;
    hi -= lt ? 0 : 1;
    outp[cursor] = v;
    cursor += hit ? 1 : 0;
  }
  SCRACK_DCHECK(cursor == hits);
  counters->swaps += SwapEquivalent(data, begin, lo, pivot);
  std::memcpy(data + begin, scratch, sizeof(Value) * static_cast<size_t>(n));
  out->resize(static_cast<size_t>(base + hits));
  counters->touched += n;
  return begin + lo;
}

void FilterInto(const Value* data, Index begin, Index end, Value qlo,
                Value qhi, std::vector<Value>* out,
                KernelCounters* counters) {
  const Index hits = CountQualifying(data, begin, end, qlo, qhi);
  const Index base = static_cast<Index>(out->size());
  out->resize(static_cast<size_t>(base + hits + kSimdSlack));
  Value* outp = out->data() + base;
  const PermTables& t = Tables();
  const __m256i qlov = _mm256_set1_epi64x(qlo);
  const __m256i qhiv = _mm256_set1_epi64x(qhi);
  Index cursor = 0;
  Index i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const int mq = MoveMask64(QualifyMask(v, qlov, qhiv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(outp + cursor),
                        _mm256_permutevar8x32_epi32(v, LoadPerm(t.left[mq])));
    cursor += t.pop[mq];
  }
  Index tail_cursor = cursor;
  FilterTail(data, i, end, qlo, qhi, outp, &tail_cursor);
  SCRACK_DCHECK(tail_cursor == hits);
  out->resize(static_cast<size_t>(base + hits));
  counters->touched += end - begin;
}

Index CountInRange(const Value* data, Index begin, Index end, Value qlo,
                   Value qhi) {
  return CountQualifying(data, begin, end, qlo, qhi);
}

RangeSum SumInRange(const Value* data, Index begin, Index end, Value qlo,
                    Value qhi) {
  const __m256i qlov = _mm256_set1_epi64x(qlo);
  const __m256i qhiv = _mm256_set1_epi64x(qhi);
  __m256i count_acc = _mm256_setzero_si256();
  __m256i sum_acc = _mm256_setzero_si256();
  Index i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i q = QualifyMask(v, qlov, qhiv);
    count_acc = _mm256_sub_epi64(count_acc, q);
    sum_acc = _mm256_add_epi64(sum_acc, _mm256_and_si256(v, q));
  }
  RangeSum r;
  r.count = static_cast<Index>(HorizontalSum(count_acc));
  r.sum = HorizontalSum(sum_acc);
  for (; i < end; ++i) {
    const Value v = data[i];
    const bool hit = qlo <= v && v < qhi;
    r.count += hit ? 1 : 0;
    r.sum += hit ? v : 0;
  }
  return r;
}

RangeMinMax MinMaxInRange(const Value* data, Index begin, Index end,
                          Value qlo, Value qhi) {
  constexpr Value kMinSentinel = std::numeric_limits<Value>::max();
  constexpr Value kMaxSentinel = std::numeric_limits<Value>::min();
  const __m256i qlov = _mm256_set1_epi64x(qlo);
  const __m256i qhiv = _mm256_set1_epi64x(qhi);
  __m256i mn_acc = _mm256_set1_epi64x(kMinSentinel);
  __m256i mx_acc = _mm256_set1_epi64x(kMaxSentinel);
  __m256i count_acc = _mm256_setzero_si256();
  Index i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i q = QualifyMask(v, qlov, qhiv);
    // Non-qualifying lanes become the neutral sentinel for each fold.
    const __m256i lo_cand =
        _mm256_blendv_epi8(_mm256_set1_epi64x(kMinSentinel), v, q);
    const __m256i hi_cand =
        _mm256_blendv_epi8(_mm256_set1_epi64x(kMaxSentinel), v, q);
    mn_acc = _mm256_blendv_epi8(mn_acc, lo_cand,
                                _mm256_cmpgt_epi64(mn_acc, lo_cand));
    mx_acc = _mm256_blendv_epi8(mx_acc, hi_cand,
                                _mm256_cmpgt_epi64(hi_cand, mx_acc));
    count_acc = _mm256_sub_epi64(count_acc, q);
  }
  alignas(32) Value mn_lanes[4];
  alignas(32) Value mx_lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(mn_lanes), mn_acc);
  _mm256_store_si256(reinterpret_cast<__m256i*>(mx_lanes), mx_acc);
  Value mn = kMinSentinel;
  Value mx = kMaxSentinel;
  for (int lane = 0; lane < 4; ++lane) {
    mn = std::min(mn, mn_lanes[lane]);
    mx = std::max(mx, mx_lanes[lane]);
  }
  Index count = static_cast<Index>(HorizontalSum(count_acc));
  for (; i < end; ++i) {
    const Value v = data[i];
    const bool hit = qlo <= v && v < qhi;
    const Value lo_cand = hit ? v : kMinSentinel;
    const Value hi_cand = hit ? v : kMaxSentinel;
    mn = lo_cand < mn ? lo_cand : mn;
    mx = hi_cand > mx ? hi_cand : mx;
    count += hit ? 1 : 0;
  }
  RangeMinMax r;
  r.count = count;
  if (count > 0) {
    r.min = mn;
    r.max = mx;
  }
  return r;
}

RangePrefixHits CountPrefixHits(const Value* data, Index begin, Index end,
                                Value qlo, Value qhi, Index limit) {
  RangePrefixHits r;
  kernel_internal::BlockedPrefixHits(
      data, begin, end, qlo, qhi, limit, &r.hits, &r.examined,
      [qlo, qhi](const Value* d, Index b, Index e) {
        return CountQualifying(d, b, e, qlo, qhi);
      });
  return r;
}

}  // namespace avx2
}  // namespace scrack
