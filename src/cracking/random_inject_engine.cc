#include "cracking/random_inject_engine.h"

#include <algorithm>

namespace scrack {

Status RandomInjectEngine::Select(Value low, Value high,
                                  QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  const int64_t query_number = stats_.queries++;
  column_.EnsureInitialized(&stats_);

  const auto original = [](const Piece&) { return EndPieceMode::kCrack; };

  if (query_number % period_ == 0 && column_.size() > 0 &&
      column_.min_value() < column_.max_value()) {
    // The forced random query: same width as the user query, random
    // position, answered into a discarded result. Its cost is charged to
    // this user query, as in the paper's cumulative accounting.
    const Value width = std::max<Value>(1, high - low);
    Value rlo = column_.rng().UniformValue(column_.min_value(),
                                           column_.max_value());
    Value rhi = rlo + width;
    ++stats_.random_pivots;
    QueryResult discarded;
    SCRACK_RETURN_NOT_OK(
        column_.SelectWithPolicy(rlo, rhi, original, &discarded, &stats_));
  }
  return column_.SelectWithPolicy(low, high, original, result, &stats_);
}

}  // namespace scrack
