// AvlTree: the paper's reference structure for the cracker index.
//
// Original cracking stores its structural knowledge — which piece of the
// cracked array holds which value range — in an AVL tree (paper §3,
// "original cracking uses AVL-trees"). This is a from-scratch AVL
// implementation specialized for that role: keys are crack values, payloads
// are array positions, and the operations cracking needs beyond insert are
// predecessor/successor-style searches (Floor / Lower / Higher / Ceiling)
// and bulk position shifts for the update (Ripple) path.
//
// CrackerIndex no longer uses it on the hot path — piece lookup now binary
// searches a flat sorted vector (index/cracker_index.h), which avoids the
// per-probe pointer chase. The tree is kept as the paper-faithful reference
// implementation and as the baseline in bench_micro_index.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "util/common.h"

namespace scrack {

/// An AVL-balanced map from crack value to array position.
///
/// Semantics of an entry (key=v, pos=p) in cracker usage: every array
/// element at position < p has value < v, every element at position >= p has
/// value >= v. The tree itself is agnostic to that; it just keeps ordered
/// (key, pos) pairs balanced.
class AvlTree {
 public:
  struct Entry {
    Value key;
    Index pos;
  };

  AvlTree() = default;
  ~AvlTree() = default;

  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;
  AvlTree(AvlTree&&) = default;
  AvlTree& operator=(AvlTree&&) = default;

  /// Inserts a new (key, pos) pair. If the key already exists, the call is
  /// a no-op and returns false (cracks are immutable once placed).
  bool Insert(Value key, Index pos);

  /// Removes a key. Returns false if absent.
  bool Erase(Value key);

  /// True if `key` is present.
  bool Contains(Value key) const { return FindNode(key) != nullptr; }

  /// Returns the position for `key`, or nullptr if absent. The pointer is
  /// invalidated by any mutation of the tree.
  const Index* Find(Value key) const;

  /// Greatest entry with key <= v; nullptr if none.
  const Entry* Floor(Value v) const;
  /// Greatest entry with key <  v; nullptr if none.
  const Entry* Lower(Value v) const;
  /// Smallest entry with key >= v; nullptr if none.
  const Entry* Ceiling(Value v) const;
  /// Smallest entry with key >  v; nullptr if none.
  const Entry* Higher(Value v) const;

  /// Smallest / greatest entry; nullptr on empty tree.
  const Entry* Min() const;
  const Entry* Max() const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all entries.
  void Clear();

  /// In-order traversal (ascending key). The callback must not mutate the
  /// tree.
  void InOrder(const std::function<void(const Entry&)>& fn) const;

  /// Adds `delta` to the position of every entry with key > v (used by the
  /// Ripple update path when an insert/delete shifts upper pieces).
  /// O(k + log n) where k is the number of affected entries.
  void ShiftPositionsAbove(Value v, Index delta);

  /// In-order traversal that may rewrite entry positions (not keys). Used
  /// by the hybrid engines when a contiguous range is physically removed
  /// from the column and all cracks above it must be remapped.
  void ForEachMutablePosition(const std::function<void(Value, Index&)>& fn);

  /// Height of the tree (0 for empty). Exposed for balance tests.
  int Height() const { return NodeHeight(root_.get()); }

  /// Verifies AVL balance and key ordering; returns false on violation.
  /// Test/debug API — linear time.
  bool ValidateStructure() const;

 private:
  struct Node {
    Entry entry;
    int height = 1;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  static int NodeHeight(const Node* n) { return n == nullptr ? 0 : n->height; }
  static void UpdateHeight(Node* n);
  static int BalanceFactor(const Node* n);
  static void RotateLeft(std::unique_ptr<Node>& slot);
  static void RotateRight(std::unique_ptr<Node>& slot);
  static void Rebalance(std::unique_ptr<Node>& slot);

  bool InsertRec(std::unique_ptr<Node>& slot, Value key, Index pos);
  bool EraseRec(std::unique_ptr<Node>& slot, Value key);
  static Entry DetachMin(std::unique_ptr<Node>& slot);

  const Node* FindNode(Value key) const;
  static void InOrderRec(const Node* n,
                         const std::function<void(const Entry&)>& fn);
  static void ShiftRec(Node* n, Value v, Index delta);
  static bool ValidateRec(const Node* n, const Value* min_key,
                          const Value* max_key);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace scrack
