#include "index/avl_tree.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace scrack {

void AvlTree::UpdateHeight(Node* n) {
  n->height = 1 + std::max(NodeHeight(n->left.get()),
                           NodeHeight(n->right.get()));
}

int AvlTree::BalanceFactor(const Node* n) {
  return NodeHeight(n->left.get()) - NodeHeight(n->right.get());
}

void AvlTree::RotateLeft(std::unique_ptr<Node>& slot) {
  // Rotates x=(A, y=(B, C)) left into y=(x=(A, B), C).
  std::unique_ptr<Node> y = std::move(slot->right);
  slot->right = std::move(y->left);
  UpdateHeight(slot.get());
  y->left = std::move(slot);
  slot = std::move(y);
  UpdateHeight(slot.get());
}

void AvlTree::RotateRight(std::unique_ptr<Node>& slot) {
  std::unique_ptr<Node> y = std::move(slot->left);
  slot->left = std::move(y->right);
  UpdateHeight(slot.get());
  y->right = std::move(slot);
  slot = std::move(y);
  UpdateHeight(slot.get());
}

void AvlTree::Rebalance(std::unique_ptr<Node>& slot) {
  UpdateHeight(slot.get());
  const int bf = BalanceFactor(slot.get());
  if (bf > 1) {
    if (BalanceFactor(slot->left.get()) < 0) {
      RotateLeft(slot->left);  // left-right case
    }
    RotateRight(slot);
  } else if (bf < -1) {
    if (BalanceFactor(slot->right.get()) > 0) {
      RotateRight(slot->right);  // right-left case
    }
    RotateLeft(slot);
  }
}

bool AvlTree::Insert(Value key, Index pos) {
  const bool inserted = InsertRec(root_, key, pos);
  if (inserted) ++size_;
  return inserted;
}

bool AvlTree::InsertRec(std::unique_ptr<Node>& slot, Value key, Index pos) {
  if (slot == nullptr) {
    slot = std::make_unique<Node>();
    slot->entry = Entry{key, pos};
    return true;
  }
  bool inserted;
  if (key < slot->entry.key) {
    inserted = InsertRec(slot->left, key, pos);
  } else if (key > slot->entry.key) {
    inserted = InsertRec(slot->right, key, pos);
  } else {
    return false;  // duplicate key: cracks are immutable
  }
  if (inserted) Rebalance(slot);
  return inserted;
}

bool AvlTree::Erase(Value key) {
  const bool erased = EraseRec(root_, key);
  if (erased) --size_;
  return erased;
}

bool AvlTree::EraseRec(std::unique_ptr<Node>& slot, Value key) {
  if (slot == nullptr) return false;
  bool erased;
  if (key < slot->entry.key) {
    erased = EraseRec(slot->left, key);
  } else if (key > slot->entry.key) {
    erased = EraseRec(slot->right, key);
  } else {
    if (slot->left == nullptr) {
      slot = std::move(slot->right);
    } else if (slot->right == nullptr) {
      slot = std::move(slot->left);
    } else {
      slot->entry = DetachMin(slot->right);
      Rebalance(slot);
    }
    return true;
  }
  if (erased && slot != nullptr) Rebalance(slot);
  return erased;
}

AvlTree::Entry AvlTree::DetachMin(std::unique_ptr<Node>& slot) {
  if (slot->left == nullptr) {
    Entry min_entry = slot->entry;
    slot = std::move(slot->right);
    return min_entry;
  }
  Entry min_entry = DetachMin(slot->left);
  Rebalance(slot);
  return min_entry;
}

const AvlTree::Node* AvlTree::FindNode(Value key) const {
  const Node* n = root_.get();
  while (n != nullptr) {
    if (key < n->entry.key) {
      n = n->left.get();
    } else if (key > n->entry.key) {
      n = n->right.get();
    } else {
      return n;
    }
  }
  return nullptr;
}

const Index* AvlTree::Find(Value key) const {
  const Node* n = FindNode(key);
  return n == nullptr ? nullptr : &n->entry.pos;
}

const AvlTree::Entry* AvlTree::Floor(Value v) const {
  const Node* n = root_.get();
  const Entry* best = nullptr;
  while (n != nullptr) {
    if (n->entry.key <= v) {
      best = &n->entry;
      n = n->right.get();
    } else {
      n = n->left.get();
    }
  }
  return best;
}

const AvlTree::Entry* AvlTree::Lower(Value v) const {
  const Node* n = root_.get();
  const Entry* best = nullptr;
  while (n != nullptr) {
    if (n->entry.key < v) {
      best = &n->entry;
      n = n->right.get();
    } else {
      n = n->left.get();
    }
  }
  return best;
}

const AvlTree::Entry* AvlTree::Ceiling(Value v) const {
  const Node* n = root_.get();
  const Entry* best = nullptr;
  while (n != nullptr) {
    if (n->entry.key >= v) {
      best = &n->entry;
      n = n->left.get();
    } else {
      n = n->right.get();
    }
  }
  return best;
}

const AvlTree::Entry* AvlTree::Higher(Value v) const {
  const Node* n = root_.get();
  const Entry* best = nullptr;
  while (n != nullptr) {
    if (n->entry.key > v) {
      best = &n->entry;
      n = n->left.get();
    } else {
      n = n->right.get();
    }
  }
  return best;
}

const AvlTree::Entry* AvlTree::Min() const {
  const Node* n = root_.get();
  if (n == nullptr) return nullptr;
  while (n->left != nullptr) n = n->left.get();
  return &n->entry;
}

const AvlTree::Entry* AvlTree::Max() const {
  const Node* n = root_.get();
  if (n == nullptr) return nullptr;
  while (n->right != nullptr) n = n->right.get();
  return &n->entry;
}

void AvlTree::Clear() {
  // Iterative teardown: unlink children before destroying a node so that a
  // degenerate destruction chain cannot overflow the stack on huge trees.
  std::unique_ptr<Node> current = std::move(root_);
  while (current != nullptr) {
    if (current->left != nullptr) {
      std::unique_ptr<Node> left = std::move(current->left);
      current->left = std::move(left->right);
      left->right = std::move(current);
      current = std::move(left);
    } else {
      current = std::move(current->right);
    }
  }
  size_ = 0;
}

void AvlTree::InOrder(const std::function<void(const Entry&)>& fn) const {
  InOrderRec(root_.get(), fn);
}

void AvlTree::InOrderRec(const Node* n,
                         const std::function<void(const Entry&)>& fn) {
  if (n == nullptr) return;
  InOrderRec(n->left.get(), fn);
  fn(n->entry);
  InOrderRec(n->right.get(), fn);
}

void AvlTree::ShiftPositionsAbove(Value v, Index delta) {
  ShiftRec(root_.get(), v, delta);
}

void AvlTree::ShiftRec(Node* n, Value v, Index delta) {
  if (n == nullptr) return;
  if (n->entry.key > v) {
    n->entry.pos += delta;
    ShiftRec(n->left.get(), v, delta);
    // Everything in the right subtree also has key > v.
    ShiftRec(n->right.get(), v, delta);
  } else {
    ShiftRec(n->right.get(), v, delta);
  }
}

void AvlTree::ForEachMutablePosition(
    const std::function<void(Value, Index&)>& fn) {
  // Iterative in-order traversal with an explicit stack; positions may be
  // rewritten, keys may not (they define the tree shape).
  std::vector<Node*> stack;
  Node* current = root_.get();
  while (current != nullptr || !stack.empty()) {
    while (current != nullptr) {
      stack.push_back(current);
      current = current->left.get();
    }
    current = stack.back();
    stack.pop_back();
    fn(current->entry.key, current->entry.pos);
    current = current->right.get();
  }
}

bool AvlTree::ValidateStructure() const {
  return ValidateRec(root_.get(), nullptr, nullptr);
}

bool AvlTree::ValidateRec(const Node* n, const Value* min_key,
                          const Value* max_key) {
  if (n == nullptr) return true;
  if (min_key != nullptr && n->entry.key <= *min_key) return false;
  if (max_key != nullptr && n->entry.key >= *max_key) return false;
  const int expected =
      1 + std::max(NodeHeight(n->left.get()), NodeHeight(n->right.get()));
  if (n->height != expected) return false;
  if (std::abs(BalanceFactor(n)) > 1) return false;
  return ValidateRec(n->left.get(), min_key, &n->entry.key) &&
         ValidateRec(n->right.get(), &n->entry.key, max_key);
}

}  // namespace scrack
