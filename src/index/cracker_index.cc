#include "index/cracker_index.h"

#include <algorithm>
#include <string>

namespace scrack {

Index CrackerIndex::UpperBound(Value v) const {
  // Branch-free binary search with an explicit prefetch ladder. FindPiece
  // sits on every query's hot path; at large crack counts the classic
  // std::upper_bound pays one unpredicted branch plus one cold cache line
  // per probe. Here the halving step is a conditional move, and both
  // possible next probe lines are prefetched while the current compare is
  // in flight, so the lookup runs at roughly one L2/L3 latency per *two*
  // levels instead of one per level once the key array outgrows the cache.
  const Value* base = keys_.data();
  size_t n = keys_.size();
  size_t low = 0;
  while (n > 1) {
    const size_t half = n / 2;
    // The two lines the *next* iteration can probe, for either outcome of
    // the compare below.
    __builtin_prefetch(base + low + half / 2);
    __builtin_prefetch(base + low + half + (n - half) / 2);
    // upper_bound predicate: move right while base[mid] <= v (the answer
    // is the first index whose key exceeds v).
    low = (base[low + half - 1] <= v) ? low + half : low;
    n -= half;
  }
  if (n == 1 && low < keys_.size() && base[low] <= v) ++low;
  return static_cast<Index>(low);
}

CrackerIndex CrackerIndex::FromSorted(const std::vector<Entry>& entries,
                                      Index column_size) {
  CrackerIndex index(column_size);
  index.keys_.reserve(entries.size());
  index.pos_.reserve(entries.size());
  Index prev_pos = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    SCRACK_CHECK(i == 0 || entries[i].key > entries[i - 1].key);
    SCRACK_CHECK(entries[i].pos >= prev_pos && entries[i].pos <= column_size);
    prev_pos = entries[i].pos;
    index.keys_.push_back(entries[i].key);
    index.pos_.push_back(entries[i].pos);
  }
  index.meta_.resize(entries.size() + 1);
  return index;
}

Piece CrackerIndex::FindPiece(Value v) const {
  Piece piece;
  const Index i = UpperBound(v);  // first crack with key > v
  if (i > 0) {
    piece.begin = pos_[static_cast<size_t>(i - 1)];
    piece.has_lower = true;
    piece.lower = keys_[static_cast<size_t>(i - 1)];
    piece.meta_key = piece.lower;
  } else {
    piece.begin = 0;
    piece.has_lower = false;
    piece.meta_key = kHeadKey;
  }
  if (i < static_cast<Index>(keys_.size())) {
    piece.end = pos_[static_cast<size_t>(i)];
    piece.has_upper = true;
    piece.upper = keys_[static_cast<size_t>(i)];
  } else {
    piece.end = column_size_;
    piece.has_upper = false;
  }
  SCRACK_DCHECK(piece.begin <= piece.end);
  return piece;
}

bool CrackerIndex::AddCrack(Value v, Index pos) {
  SCRACK_CHECK(pos >= 0 && pos <= column_size_);
  const Index i = UpperBound(v);  // insertion point
  if (i > 0 && keys_[static_cast<size_t>(i - 1)] == v) {
    return false;  // crack already present
  }
  const Index parent_begin = i > 0 ? pos_[static_cast<size_t>(i - 1)] : 0;
  const Index parent_end = i < static_cast<Index>(keys_.size())
                               ? pos_[static_cast<size_t>(i)]
                               : column_size_;
  SCRACK_DCHECK(pos >= parent_begin && pos <= parent_end);
  (void)parent_begin;
  (void)parent_end;
  // The new piece [pos, parent.end) inherits the parent piece's counter
  // (meta_[i] is the parent: head when i == 0, else the piece below
  // keys_[i-1]). Copy before the inserts invalidate references.
  PieceMeta inherited;
  inherited.crack_count = meta_[static_cast<size_t>(i)].crack_count;
  // A progressive crack must never span a fresh crack; engines guarantee
  // they complete or avoid pending state before splitting a piece.
  SCRACK_DCHECK(!meta_[static_cast<size_t>(i)].progressive.active);
  keys_.insert(keys_.begin() + i, v);
  pos_.insert(pos_.begin() + i, pos);
  meta_.insert(meta_.begin() + i + 1, inherited);
  return true;
}

PieceMeta& CrackerIndex::MetaFor(Value meta_key) {
  if (meta_key == kHeadKey && !HasCrack(kHeadKey)) {
    return meta_[0];
  }
  const Index i = UpperBound(meta_key);
  SCRACK_CHECK(i > 0 && keys_[static_cast<size_t>(i - 1)] == meta_key);
  return meta_[static_cast<size_t>(i)];
}

const PieceMeta* CrackerIndex::FindMeta(Value meta_key) const {
  if (meta_key == kHeadKey && !HasCrack(kHeadKey)) {
    return &meta_[0];
  }
  const Index i = UpperBound(meta_key);
  if (i > 0 && keys_[static_cast<size_t>(i - 1)] == meta_key) {
    return &meta_[static_cast<size_t>(i)];
  }
  return nullptr;
}

void CrackerIndex::DeactivateAllProgressive() {
  for (PieceMeta& meta : meta_) {
    meta.progressive = ProgressiveCrack{};
  }
}

void CrackerIndex::ShiftAbove(Value v, Index delta) {
  const Index start = UpperBound(v);
  for (size_t i = static_cast<size_t>(start); i < pos_.size(); ++i) {
    pos_[i] += delta;
  }
  column_size_ += delta;
  SCRACK_CHECK(column_size_ >= 0);
}

void CrackerIndex::CollapseRange(Value lo, Value hi, Index pos, Index count) {
  SCRACK_CHECK(count >= 0);
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] > lo && keys_[i] <= hi) {
      pos_[i] = pos;
    } else if (keys_[i] > hi) {
      pos_[i] -= count;
    }
  }
  column_size_ -= count;
  SCRACK_CHECK(column_size_ >= 0);
}

std::vector<CrackerIndex::Entry> CrackerIndex::CracksAbove(Value v) const {
  std::vector<Entry> out;
  const size_t start = static_cast<size_t>(UpperBound(v));
  out.reserve(keys_.size() - start);
  for (size_t i = start; i < keys_.size(); ++i) {
    out.push_back(Entry{keys_[i], pos_[i]});
  }
  return out;
}

void CrackerIndex::ForEachPiece(
    const std::function<void(const Piece&)>& fn) const {
  Piece piece;
  piece.begin = 0;
  piece.has_lower = false;
  piece.meta_key = kHeadKey;
  for (size_t i = 0; i < keys_.size(); ++i) {
    piece.end = pos_[i];
    piece.has_upper = true;
    piece.upper = keys_[i];
    fn(piece);
    piece.begin = pos_[i];
    piece.has_lower = true;
    piece.lower = keys_[i];
    piece.meta_key = keys_[i];
  }
  piece.end = column_size_;
  piece.has_upper = false;
  fn(piece);
}

Status CrackerIndex::Validate(const Value* data, Index n) const {
  if (n != column_size_) {
    return Status::Internal("column size mismatch: index thinks " +
                            std::to_string(column_size_) + ", actual " +
                            std::to_string(n));
  }
  // Cracks must be key-sorted (strictly) with monotone positions in [0, n].
  Index prev_pos = 0;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0 && keys_[i] <= keys_[i - 1]) {
      return Status::Internal("crack keys not strictly ascending");
    }
    if (pos_[i] < prev_pos || pos_[i] > n) {
      return Status::Internal("crack positions not monotone or out of range");
    }
    prev_pos = pos_[i];
  }
  // Every element must respect its piece's value bounds.
  Status piece_status = Status::OK();
  ForEachPiece([&](const Piece& piece) {
    if (!piece_status.ok()) return;
    for (Index i = piece.begin; i < piece.end; ++i) {
      if (piece.has_lower && data[i] < piece.lower) {
        piece_status = Status::Internal(
            "element " + std::to_string(data[i]) + " at position " +
            std::to_string(i) + " below piece lower bound " +
            std::to_string(piece.lower));
        return;
      }
      if (piece.has_upper && data[i] >= piece.upper) {
        piece_status = Status::Internal(
            "element " + std::to_string(data[i]) + " at position " +
            std::to_string(i) + " not below piece upper bound " +
            std::to_string(piece.upper));
        return;
      }
    }
  });
  return piece_status;
}

}  // namespace scrack
