#include "index/cracker_index.h"

#include <string>
#include <vector>

namespace scrack {

Piece CrackerIndex::FindPiece(Value v) const {
  Piece piece;
  const AvlTree::Entry* lo = tree_.Floor(v);
  const AvlTree::Entry* hi = tree_.Higher(v);
  if (lo != nullptr) {
    piece.begin = lo->pos;
    piece.has_lower = true;
    piece.lower = lo->key;
    piece.meta_key = lo->key;
  } else {
    piece.begin = 0;
    piece.has_lower = false;
    piece.meta_key = kHeadKey;
  }
  if (hi != nullptr) {
    piece.end = hi->pos;
    piece.has_upper = true;
    piece.upper = hi->key;
  } else {
    piece.end = column_size_;
    piece.has_upper = false;
  }
  SCRACK_DCHECK(piece.begin <= piece.end);
  return piece;
}

bool CrackerIndex::AddCrack(Value v, Index pos) {
  SCRACK_CHECK(pos >= 0 && pos <= column_size_);
  // The new piece [pos, old_piece.end) inherits the parent piece's counter.
  const Piece parent = FindPiece(v);
  if (parent.has_lower && parent.lower == v) {
    return false;  // crack already present
  }
  SCRACK_DCHECK(pos >= parent.begin && pos <= parent.end);
  const bool inserted = tree_.Insert(v, pos);
  SCRACK_CHECK(inserted);
  PieceMeta inherited;
  auto parent_it = meta_.find(parent.meta_key);
  if (parent_it != meta_.end()) {
    inherited.crack_count = parent_it->second.crack_count;
    // A progressive crack must never span a fresh crack; engines guarantee
    // they complete or avoid pending state before splitting a piece.
    SCRACK_DCHECK(!parent_it->second.progressive.active);
  }
  meta_.emplace(v, inherited);
  return true;
}

PieceMeta& CrackerIndex::MetaFor(Value meta_key) {
  return meta_[meta_key];  // creates default state on first touch
}

const PieceMeta* CrackerIndex::FindMeta(Value meta_key) const {
  auto it = meta_.find(meta_key);
  return it == meta_.end() ? nullptr : &it->second;
}

void CrackerIndex::DeactivateAllProgressive() {
  for (auto& [key, meta] : meta_) {
    meta.progressive = ProgressiveCrack{};
  }
}

void CrackerIndex::ShiftAbove(Value v, Index delta) {
  tree_.ShiftPositionsAbove(v, delta);
  column_size_ += delta;
  SCRACK_CHECK(column_size_ >= 0);
}

void CrackerIndex::CollapseRange(Value lo, Value hi, Index pos, Index count) {
  SCRACK_CHECK(count >= 0);
  tree_.ForEachMutablePosition([&](Value key, Index& position) {
    if (key > lo && key <= hi) {
      position = pos;
    } else if (key > hi) {
      position -= count;
    }
  });
  column_size_ -= count;
  SCRACK_CHECK(column_size_ >= 0);
}

std::vector<AvlTree::Entry> CrackerIndex::CracksAbove(Value v) const {
  std::vector<AvlTree::Entry> out;
  tree_.InOrder([&](const AvlTree::Entry& e) {
    if (e.key > v) out.push_back(e);
  });
  return out;
}

void CrackerIndex::ForEachPiece(
    const std::function<void(const Piece&)>& fn) const {
  Piece piece;
  piece.begin = 0;
  piece.has_lower = false;
  piece.meta_key = kHeadKey;
  tree_.InOrder([&](const AvlTree::Entry& e) {
    piece.end = e.pos;
    piece.has_upper = true;
    piece.upper = e.key;
    fn(piece);
    piece.begin = e.pos;
    piece.has_lower = true;
    piece.lower = e.key;
    piece.meta_key = e.key;
  });
  piece.end = column_size_;
  piece.has_upper = false;
  fn(piece);
}

Status CrackerIndex::Validate(const Value* data, Index n) const {
  if (n != column_size_) {
    return Status::Internal("column size mismatch: index thinks " +
                            std::to_string(column_size_) + ", actual " +
                            std::to_string(n));
  }
  // Cracks must be position-sorted in key order, within [0, n].
  Index prev_pos = 0;
  bool bad = false;
  tree_.InOrder([&](const AvlTree::Entry& e) {
    if (e.pos < prev_pos || e.pos > n) bad = true;
    prev_pos = e.pos;
  });
  if (bad) {
    return Status::Internal("crack positions not monotone or out of range");
  }
  // Every element must respect its piece's value bounds.
  Status piece_status = Status::OK();
  ForEachPiece([&](const Piece& piece) {
    if (!piece_status.ok()) return;
    for (Index i = piece.begin; i < piece.end; ++i) {
      if (piece.has_lower && data[i] < piece.lower) {
        piece_status = Status::Internal(
            "element " + std::to_string(data[i]) + " at position " +
            std::to_string(i) + " below piece lower bound " +
            std::to_string(piece.lower));
        return;
      }
      if (piece.has_upper && data[i] >= piece.upper) {
        piece_status = Status::Internal(
            "element " + std::to_string(data[i]) + " at position " +
            std::to_string(i) + " not below piece upper bound " +
            std::to_string(piece.upper));
        return;
      }
    }
  });
  return piece_status;
}

}  // namespace scrack
