// CrackerIndex: piece bookkeeping for a cracked column.
//
// A cracked column is one contiguous array plus a set of "cracks". A crack
// (v, p) promises: every element at position < p is < v, every element at
// position >= p is >= v. Consecutive cracks bound *pieces* — the logical
// partitions of Fig. 1. CrackerIndex provides:
//   * piece lookup by value (which piece would hold value v?),
//   * crack registration with piece-metadata inheritance,
//   * per-piece metadata: the crack counters used by the ScrackMon selective
//     strategy (Fig. 19) and the in-progress crack state used by progressive
//     cracking (PMDD1R, Fig. 9c),
//   * position maintenance under Ripple updates (Fig. 15),
//   * full-structure validation used by the test suite after every query.
//
// Storage: flat sorted vectors, not a search tree. The paper's original
// cracking uses an AVL tree (§3) — kept in index/avl_tree.h as a reference
// structure — but every FindPiece on the query hot path paid its pointer
// chase. Here the crack keys live in one contiguous sorted array
// (binary-searched, ~a cache line per probe), with positions and per-piece
// metadata in parallel arrays. Inserts memmove the tail; with the crack
// counts real workloads reach (thousands) that is a few KB of contiguous
// moves, amortized by geometric capacity growth — far cheaper than what
// the tree saved on lookups.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace scrack {

/// Progress state of a partially-completed random crack (progressive
/// stochastic cracking). While active, the piece is partitioned as:
///   [piece.begin, left)   : values <  pivot   (settled)
///   [left, right]         : unprocessed
///   (right, piece.end)    : values >= pivot   (settled)
/// The crack completes when left > right, at which point a real crack
/// (pivot, left) is registered and the state cleared.
struct ProgressiveCrack {
  bool active = false;
  Value pivot = 0;
  Index left = 0;
  Index right = -1;
};

/// Per-piece metadata, keyed by the piece's lower crack value (or
/// CrackerIndex::kHeadKey for the piece that starts at position 0).
struct PieceMeta {
  /// Times this piece (or its ancestors) was cracked; ScrackMon (Fig. 19)
  /// triggers a stochastic action when this reaches its threshold.
  int64_t crack_count = 0;
  ProgressiveCrack progressive;
};

/// A piece of the cracked array, as returned by FindPiece.
struct Piece {
  Index begin = 0;  ///< first position of the piece
  Index end = 0;    ///< one past the last position
  /// Metadata key: the lower crack value, or CrackerIndex::kHeadKey when the
  /// piece starts at position 0 with no lower crack.
  Value meta_key = 0;
  bool has_lower = false;  ///< a crack bounds this piece from below
  bool has_upper = false;  ///< a crack bounds this piece from above
  Value lower = 0;         ///< value of the lower crack (valid if has_lower)
  Value upper = 0;         ///< value of the upper crack (valid if has_upper)

  Index size() const { return end - begin; }
};

/// Structural index over one cracked column. Owns no data; the column array
/// lives in the engine (CrackerColumn).
class CrackerIndex {
 public:
  /// One crack: its key (value) and array position.
  struct Entry {
    Value key;
    Index pos;
  };

  /// Metadata key of the head piece (the piece starting at position 0).
  static constexpr Value kHeadKey = std::numeric_limits<Value>::min();

  explicit CrackerIndex(Index column_size) : column_size_(column_size) {
    SCRACK_CHECK(column_size >= 0);
    meta_.resize(1);  // head piece
  }

  /// Bulk-builds an index from entries with strictly ascending keys and
  /// monotone positions in [0, column_size]. O(#entries) — benchmarks and
  /// tests use this to reach millions of pieces without paying a memmove
  /// per incremental AddCrack.
  static CrackerIndex FromSorted(const std::vector<Entry>& entries,
                                 Index column_size);

  /// The piece whose *value range* contains v: bounded below by the greatest
  /// crack with key <= v and above by the smallest crack with key > v.
  /// Note the asymmetry: a crack with key == v bounds from *below* because
  /// values >= v live right of it. O(log cracks), branch-predictable.
  Piece FindPiece(Value v) const;

  /// Registers a crack (v, pos): values < v occupy [piece.begin, pos).
  /// No-op (returns false) if a crack at v already exists. The new upper
  /// piece inherits the lower piece's crack counter (ScrackMon semantics:
  /// "when a new piece is created it inherits the counter from its parent").
  bool AddCrack(Value v, Index pos);

  /// True if a crack at exactly `v` exists.
  bool HasCrack(Value v) const {
    const Index i = UpperBound(v);
    return i > 0 && keys_[static_cast<size_t>(i - 1)] == v;
  }

  /// Position of the crack at `v`; requires HasCrack(v).
  Index CrackPosition(Value v) const {
    const Index i = UpperBound(v);
    SCRACK_CHECK(i > 0 && keys_[static_cast<size_t>(i - 1)] == v);
    return pos_[static_cast<size_t>(i - 1)];
  }

  size_t num_cracks() const { return keys_.size(); }
  Index column_size() const { return column_size_; }

  /// Positional introspection over the sorted crack arrays, for external
  /// validators (audit/invariant_auditor.cc) that re-derive the structural
  /// invariants instead of trusting Validate(). `i` < num_cracks().
  Value crack_key(size_t i) const { return keys_[i]; }
  Index crack_pos(size_t i) const { return pos_[i]; }
  /// Metadata slots; invariant: always num_cracks() + 1.
  size_t meta_count() const { return meta_.size(); }

  /// Mutable metadata for the piece identified by `meta_key` (kHeadKey or
  /// an existing crack value). The reference lives in a flat array: it is
  /// invalidated by the next AddCrack — do not hold it across one.
  PieceMeta& MetaFor(Value meta_key);
  const PieceMeta* FindMeta(Value meta_key) const;

  /// Abandons every in-flight progressive crack (positions are about to
  /// shift under an update merge; the partial partition work is simply
  /// dropped — no crack was registered yet, so no invariant is at stake).
  void DeactivateAllProgressive();

  /// Update (Ripple) support: shifts the positions of all cracks with
  /// key > v by delta and adjusts the column size by delta.
  void ShiftAbove(Value v, Index delta);

  /// Hybrid (partition/merge) support: records the physical removal of
  /// `count` elements at positions [pos, pos+count) holding values in
  /// [lo, hi). Cracks with key in (lo, hi] collapse onto `pos`; cracks with
  /// key > hi shift down by `count`. Column size shrinks by `count`.
  void CollapseRange(Value lo, Value hi, Index pos, Index count);

  /// Ascending crack entries for all cracks with key > v. Used by the
  /// Ripple insert/delete paths, which touch one element per boundary.
  std::vector<Entry> CracksAbove(Value v) const;

  /// Ascending traversal of all pieces.
  void ForEachPiece(const std::function<void(const Piece&)>& fn) const;

  /// Verifies the full cracked-column invariant against `data`:
  ///   * crack positions are sorted consistently with keys, within bounds;
  ///   * every element of every piece lies in the piece's value range.
  /// O(n). Test/debug API.
  Status Validate(const Value* data, Index n) const;

 private:
  /// Number of cracks with key <= v (== index of the first key > v).
  Index UpperBound(Value v) const;

  // Structure-of-arrays, all kept sorted by crack key:
  //   keys_[i]  — crack value (the hot binary-search array)
  //   pos_[i]   — its array position
  //   meta_[0]  — head-piece metadata; meta_[i + 1] — metadata of the piece
  //               whose lower crack is keys_[i]
  std::vector<Value> keys_;
  std::vector<Index> pos_;
  std::vector<PieceMeta> meta_;
  Index column_size_;
};

}  // namespace scrack
