#include "hybrid/hybrid_engine.h"

#include <algorithm>
#include <limits>

#include "cracking/kernel.h"

namespace scrack {

HybridEngine::HybridEngine(const Column* base, const EngineConfig& config,
                           InitialOrg initial_org, FinalOrg org,
                           bool stochastic)
    : base_(base),
      config_(config),
      initial_org_(initial_org),
      org_(org),
      stochastic_(stochastic) {
  SCRACK_CHECK(base_ != nullptr);
  SCRACK_CHECK(config_.hybrid_partition_values >= 1);
  SCRACK_CHECK(!(stochastic_ && initial_org_ == InitialOrg::kSort));
}

std::string HybridEngine::name() const {
  std::string n = "ai";
  n += initial_org_ == InitialOrg::kCrack ? 'c' : 's';
  n += org_ == FinalOrg::kCrack ? 'c' : 's';
  if (stochastic_) n += "1r";
  return n;
}

void HybridEngine::EnsureInitialized() {
  if (initialized_) return;
  const Index n = base_->size();
  const Index per = config_.hybrid_partition_values;
  for (Index begin = 0; begin < n; begin += per) {
    const Index end = std::min(begin + per, n);
    std::vector<Value> slice(base_->data() + begin, base_->data() + end);
    partition_bases_.emplace_back(std::move(slice));
  }
  if (initial_org_ == InitialOrg::kCrack) {
    for (const Column& partition_base : partition_bases_) {
      partitions_.push_back(
          std::make_unique<CrackerColumn>(&partition_base, config_));
    }
  } else {
    sorted_partitions_.reserve(partition_bases_.size());
    for (const Column& partition_base : partition_bases_) {
      SortedPartition partition;
      partition.values = partition_base.values();
      sorted_partitions_.push_back(std::move(partition));
    }
  }
  initialized_ = true;
}

std::vector<std::pair<Value, Value>> HybridEngine::UncoveredGaps(
    Value low, Value high) const {
  std::vector<std::pair<Value, Value>> gaps;
  Value cursor = low;
  // First candidate: the piece with the greatest lo <= low.
  auto it = final_.upper_bound(low);
  if (it != final_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.hi > low) it = prev;
  }
  for (; it != final_.end() && it->second.lo < high && cursor < high; ++it) {
    if (it->second.lo > cursor) {
      gaps.emplace_back(cursor, it->second.lo);
    }
    cursor = std::max(cursor, it->second.hi);
  }
  if (cursor < high) gaps.emplace_back(cursor, high);
  return gaps;
}

void HybridEngine::FillGaps(
    const std::vector<std::pair<Value, Value>>& gaps) {
  for (const auto& [gap_lo, gap_hi] : gaps) {
    FinalPiece piece;
    piece.lo = gap_lo;
    piece.hi = gap_hi;
    if (initial_org_ == InitialOrg::kCrack) {
      for (auto& partition : partitions_) {
        if (stochastic_) {
          partition->ExtractRange1R(gap_lo, gap_hi, &piece.values, &stats_);
        } else {
          partition->ExtractRange(gap_lo, gap_hi, &piece.values, &stats_);
        }
      }
    } else {
      for (auto& partition : sorted_partitions_) {
        ExtractFromSorted(&partition, gap_lo, gap_hi, &piece.values);
      }
    }
    if (org_ == FinalOrg::kSort) {
      // Crack-Sort: merged data enters the final area sorted.
      std::sort(piece.values.begin(), piece.values.end());
      stats_.tuples_touched += static_cast<int64_t>(piece.values.size());
    }
    stats_.materialized += static_cast<int64_t>(piece.values.size());
    final_.emplace(gap_lo, std::move(piece));
  }
}

void HybridEngine::SplitFinalPieceAt(Value bound) {
  auto it = final_.upper_bound(bound);
  if (it == final_.begin()) return;
  --it;
  FinalPiece& piece = it->second;
  if (bound <= piece.lo || bound >= piece.hi) return;
  KernelCounters counters;
  const Index split =
      CrackInTwo(piece.values.data(), 0,
                 static_cast<Index>(piece.values.size()), bound, &counters);
  stats_.tuples_touched += counters.touched;
  stats_.swaps += counters.swaps;
  ++stats_.cracks;
  FinalPiece upper;
  upper.lo = bound;
  upper.hi = piece.hi;
  upper.values.assign(piece.values.begin() + split, piece.values.end());
  piece.values.resize(static_cast<size_t>(split));
  piece.hi = bound;
  final_.emplace(bound, std::move(upper));
}

void HybridEngine::AnswerFromFinal(Value low, Value high,
                                   QueryResult* result) {
  if (org_ == FinalOrg::kCrack) {
    // Crack the final area exactly on the query bounds, then the qualifying
    // pieces are whole pieces.
    SplitFinalPieceAt(low);
    SplitFinalPieceAt(high);
    for (auto it = final_.lower_bound(low);
         it != final_.end() && it->second.lo < high; ++it) {
      const FinalPiece& piece = it->second;
      SCRACK_DCHECK(piece.lo >= low && piece.hi <= high);
      result->AddView(piece.values.data(),
                      static_cast<Index>(piece.values.size()));
    }
    return;
  }
  // Crack-Sort: binary-search slices of the sorted pieces.
  auto it = final_.upper_bound(low);
  if (it != final_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.hi > low) it = prev;
  }
  for (; it != final_.end() && it->second.lo < high; ++it) {
    const FinalPiece& piece = it->second;
    const auto begin = std::lower_bound(piece.values.begin(),
                                        piece.values.end(), low) -
                       piece.values.begin();
    const auto end = std::lower_bound(piece.values.begin(),
                                      piece.values.end(), high) -
                     piece.values.begin();
    if (end > begin) {
      result->AddView(piece.values.data() + begin, end - begin);
    }
  }
}

void HybridEngine::ExtractFromSorted(SortedPartition* partition, Value low,
                                     Value high, std::vector<Value>* out) {
  if (!partition->sorted) {
    // Adaptive merging sorts each run on first touch; with equal-size runs
    // the first query pays roughly a full sort, partition by partition.
    std::sort(partition->values.begin(), partition->values.end());
    partition->sorted = true;
    stats_.tuples_touched +=
        static_cast<int64_t>(partition->values.size());
  }
  const auto begin = std::lower_bound(partition->values.begin(),
                                      partition->values.end(), low);
  const auto end = std::lower_bound(partition->values.begin(),
                                    partition->values.end(), high);
  if (end == begin) return;
  out->insert(out->end(), begin, end);
  stats_.tuples_touched += (end - begin) +
                           (partition->values.end() - end);  // erase shift
  partition->values.erase(begin, end);
}

Status HybridEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  EnsureInitialized();
  if (low >= high) return Status::OK();
  const std::vector<std::pair<Value, Value>> gaps = UncoveredGaps(low, high);
  if (!gaps.empty()) FillGaps(gaps);
  AnswerFromFinal(low, high, result);
  return Status::OK();
}

Status HybridEngine::Validate() const {
  // Final pieces must be ordered, disjoint, within bounds; sorted for AICS.
  Value prev_hi = std::numeric_limits<Value>::min();
  for (const auto& [lo, piece] : final_) {
    if (piece.lo != lo || piece.lo >= piece.hi) {
      return Status::Internal("malformed final piece bounds");
    }
    if (piece.lo < prev_hi) {
      return Status::Internal("overlapping final pieces");
    }
    prev_hi = piece.hi;
    for (Value v : piece.values) {
      if (v < piece.lo || v >= piece.hi) {
        return Status::Internal("final piece value out of range");
      }
    }
    if (org_ == FinalOrg::kSort &&
        !std::is_sorted(piece.values.begin(), piece.values.end())) {
      return Status::Internal("AICS final piece not sorted");
    }
  }
  for (const auto& partition : partitions_) {
    SCRACK_RETURN_NOT_OK(partition->Validate());
  }
  for (const auto& partition : sorted_partitions_) {
    if (partition.sorted &&
        !std::is_sorted(partition.values.begin(), partition.values.end())) {
      return Status::Internal("sorted initial partition lost sortedness");
    }
  }
  return Status::OK();
}

Index HybridEngine::ResidualInPartitions() const {
  if (!initialized_) return base_->size();
  Index total = 0;
  if (initial_org_ == InitialOrg::kCrack) {
    for (size_t i = 0; i < partitions_.size(); ++i) {
      total += partitions_[i]->initialized() ? partitions_[i]->size()
                                             : partition_bases_[i].size();
    }
  } else {
    for (const auto& partition : sorted_partitions_) {
      total += static_cast<Index>(partition.values.size());
    }
  }
  return total;
}

size_t HybridEngine::NumFinalPieces() const { return final_.size(); }

}  // namespace scrack
