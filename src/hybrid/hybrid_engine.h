// Partition/merge adaptive-indexing hybrids (Idreos, Manegold, Kuno, Graefe,
// PVLDB 4(9) 2011), plus their stochastic variants from paper §5 / Fig. 14.
//
// Structure: the column is split into fixed-size *initial partitions*. A
// query cracks every initial partition on its bounds, moves the qualifying
// contiguous ranges out, and merges them into a *final* adaptive area
// organized either by cracking (Crack-Crack, "AICC") or by sorting
// (Crack-Sort, "AICS"). Later queries over covered value ranges are served
// from the final area alone.
//
// The stochastic variants AICC1R / AICS1R additionally apply one DD1R-style
// random crack per touched initial-partition piece, which is what restores
// workload robustness in Fig. 14.
//
// Documented simplification (DESIGN.md §4): initial partitions are equal
// fixed-size slices rather than cache-budget-sized runs; this preserves the
// merge overhead and the blinkered query-driven behaviour the figure
// demonstrates.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cracking/cracker_column.h"
#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

class HybridEngine : public SelectEngine {
 public:
  /// Organization of the initial partitions.
  enum class InitialOrg {
    kCrack,  ///< AIC*: initial partitions are cracked on the query bounds
    kSort,   ///< AIS*: initial partitions are fully sorted on first touch
             ///< (the adaptive-merging lineage, Graefe & Kuno)
  };

  /// Organization of the final adaptive area.
  enum class FinalOrg {
    kCrack,  ///< AI*C: final pieces are cracked on demand
    kSort,   ///< AI*S: final pieces are kept sorted
  };

  /// `stochastic` selects the 1R variants (AICC1R / AICS1R); it applies
  /// only to crack-organized initial partitions (sorted partitions have no
  /// cracking step to randomize).
  HybridEngine(const Column* base, const EngineConfig& config,
               InitialOrg initial_org, FinalOrg org, bool stochastic);

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override;

  Status Validate() const override;

  /// Number of values still residing in initial partitions (tests).
  Index ResidualInPartitions() const;
  /// Number of value-range pieces in the final area (tests).
  size_t NumFinalPieces() const;

 private:
  /// One contiguous value range [lo, hi) fully moved to the final area.
  struct FinalPiece {
    Value lo;
    Value hi;
    std::vector<Value> values;  // sorted iff org_ == kSort
  };

  void EnsureInitialized();

  /// Uncovered subranges of [low, high) w.r.t. the final pieces.
  std::vector<std::pair<Value, Value>> UncoveredGaps(Value low,
                                                     Value high) const;

  /// Moves all values in [low, high) out of every initial partition and
  /// files them into final pieces, one per gap.
  void FillGaps(const std::vector<std::pair<Value, Value>>& gaps);

  /// AICC only: splits the final piece containing `bound` at `bound` so the
  /// qualifying part becomes a whole piece (in-place CrackInTwo).
  void SplitFinalPieceAt(Value bound);

  /// Appends views/materializations answering [low, high) from the final
  /// area; requires the range to be fully covered.
  void AnswerFromFinal(Value low, Value high, QueryResult* result);

  // A sorted initial partition (adaptive-merging run). Sorted on first
  // extraction; extraction is two binary searches plus an erase.
  struct SortedPartition {
    std::vector<Value> values;
    bool sorted = false;
  };
  void ExtractFromSorted(SortedPartition* partition, Value low, Value high,
                         std::vector<Value>* out);

  const Column* base_;
  EngineConfig config_;
  InitialOrg initial_org_;
  FinalOrg org_;
  bool stochastic_;
  bool initialized_ = false;

  std::vector<Column> partition_bases_;
  std::vector<std::unique_ptr<CrackerColumn>> partitions_;  // kCrack initial
  std::vector<SortedPartition> sorted_partitions_;          // kSort initial
  std::map<Value, FinalPiece> final_;  // keyed by FinalPiece::lo
};

}  // namespace scrack
