// CSV export of experiment results, for plotting the figures with external
// tools (gnuplot/matplotlib). scrack_repro (and the report curve printers)
// honour SCRACK_CSV_DIR: when set, each run's per-query records are also
// written as <dir>/<figure>_<label>_<engine>.csv.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/status.h"

namespace scrack {

/// Writes one run as CSV with header
/// `query,seconds,cum_seconds,touched,cum_touched,swaps,result_count,
/// result_sum`.
Status WriteRunCsv(const RunResult& run, const std::string& path);

/// Writes every run of an experiment into `dir` (created if missing) as
/// `<prefix>_<engine-name-sanitized>.csv`. No-op returning OK when `dir`
/// is empty.
Status WriteRunsCsv(const std::vector<RunResult>& runs,
                    const std::string& dir, const std::string& prefix);

/// Sanitizes an engine name for use in a file name ("pmdd1r(10%)" ->
/// "pmdd1r_10_").
std::string SanitizeFileName(const std::string& name);

}  // namespace scrack
