#include "harness/engine_factory.h"

#include <cctype>
#include <cstdlib>

#include "audit/audit_engine.h"
#include "cracking/auto_engine.h"
#include "cracking/crack_engine.h"
#include "cracking/random_inject_engine.h"
#include "cracking/threadsafe_engine.h"
#include "cracking/scan_engine.h"
#include "cracking/selective_engine.h"
#include "cracking/sort_engine.h"
#include "cracking/stochastic_engine.h"
#include "distributed/coordinator_engine.h"
#include "harness/engine_spec.h"
#include "hybrid/hybrid_engine.h"
#include "parallel/epoch_engine.h"
#include "parallel/sharded_engine.h"
#include "parallel/thread_pool.h"
#include "progressive/budgeted_engine.h"
#include "progressive/chaos_engine.h"

namespace scrack {

namespace {

bool ParsePositive(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || v <= 0) return false;
  *out = v;
  return true;
}

using Form = EngineSpec::Form;

/// A child that is a bare token (scalar argument or missing element);
/// returns "" for anything structured.
std::string ScalarText(const EngineSpec& node) {
  return node.form == Form::kName ? node.head : std::string();
}

/// Strips a trailing "-p" / "-pN" suffix from `*name` into
/// `cfg->parallel_threads` (default: all hardware threads). Leaves `*name`
/// untouched when the suffix is absent or not digit-shaped, mirroring the
/// historical string grammar. `display` feeds the error message.
Status StripParallelSuffix(std::string* name, EngineConfig* cfg,
                           const std::string& display) {
  const size_t dash_p = name->rfind("-p");
  if (dash_p == std::string::npos || dash_p == 0) return Status::OK();
  const std::string count = name->substr(dash_p + 2);
  if (count.find_first_not_of("0123456789") != std::string::npos) {
    return Status::OK();
  }
  long threads = ThreadPool::DefaultThreads();
  if (!count.empty()) threads = std::strtol(count.c_str(), nullptr, 10);
  if (threads < 1 || threads > 1024) {
    return Status::InvalidArgument(
        "parallel thread count out of range [1, 1024]: " + display);
  }
  cfg->parallel_threads = static_cast<int>(threads);
  *name = name->substr(0, dash_p);
  return Status::OK();
}

Status BuildEngine(const EngineSpec& node, const Column* base,
                   const EngineConfig& config,
                   std::unique_ptr<SelectEngine>* out);

/// sharded(P,<inner>) and coord(K,<inner>) share one shape: a positive
/// partition count plus a recursively built inner spec, handed to a
/// Create() that deals equi-depth value-range slices. `kind` is "sharded"
/// or "coord"; only the engine constructed at the end differs.
Status BuildPartitioned(const EngineSpec& node, const Column* base,
                        const EngineConfig& config,
                        std::unique_ptr<SelectEngine>* out) {
  const bool is_coord = node.head == "coord";
  const std::string display = node.ToString();
  const std::string usage =
      is_coord ? "coord spec must be coord(K,<inner>): "
               : "sharded spec must be sharded(P,<inner>): ";
  if (node.form != Form::kCall) {
    return Status::InvalidArgument(usage + display);
  }
  if (node.children.size() != 2) {
    return Status::InvalidArgument(
        node.head + " needs an inner spec: " + display);
  }
  const std::string count_text = ScalarText(node.children[0]);
  if (count_text.empty() ||
      count_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(
        (is_coord ? "bad node count: " : "bad shard count: ") + display);
  }
  const long count = std::strtol(count_text.c_str(), nullptr, 10);
  const long max_count =
      is_coord ? CoordinatorEngine::kMaxNodes : ShardedEngine::kMaxShards;
  if (count < 1 || count > max_count) {
    return Status::InvalidArgument(
        (is_coord ? "node count must be in [1, 64]: "
                  : "shard count must be in [1, 1024]: ") +
        display);
  }
  const EngineSpec& inner = node.children[1];
  const std::string inner_spec = inner.ToString();
  if (inner_spec.empty()) {
    return Status::InvalidArgument(
        node.head + " needs an inner spec: " + display);
  }
  // Both engines take the same factory shape; the lambda decorrelates the
  // partitions' stochastic pivot streams identically, which is one half of
  // the coord/sharded answer-parity guarantee (the other half is the
  // identical boundary computation inside the two Create()s).
  const auto make_inner = [inner, config](const Column* part_base,
                                          int part_index,
                                          std::unique_ptr<SelectEngine>* o) {
    EngineConfig part_cfg = config;
    part_cfg.seed = config.seed + static_cast<uint64_t>(part_index) *
                                      0x9E3779B97F4A7C15ULL;
    return BuildEngine(inner, part_base, part_cfg, o);
  };
  if (is_coord) {
    // The SLO deadline doubles as the per-hop hint stamped on every
    // wire::Request, so nodes can observe what the client is budgeting.
    return CoordinatorEngine::Create(base, static_cast<int>(count),
                                     make_inner, inner_spec, out,
                                     static_cast<int64_t>(config.deadline_us));
  }
  return ShardedEngine::Create(base, static_cast<int>(count), make_inner,
                               inner_spec, out);
}

/// audit(<inner>) / epoch(<inner>) / chaos(<inner>): one recursively built
/// child, wrapped in the respective decorator.
Status BuildWrapper(const EngineSpec& node, const Column* base,
                    const EngineConfig& config,
                    std::unique_ptr<SelectEngine>* out) {
  const std::string display = node.ToString();
  if (node.form != Form::kCall) {
    return Status::InvalidArgument(node.head + " spec must be " + node.head +
                                   "(<inner>): " + display);
  }
  if (node.children.size() != 1 || node.children[0].ToString().empty()) {
    return Status::InvalidArgument(
        node.head + " needs an inner spec: " + display);
  }
  std::unique_ptr<SelectEngine> inner;
  SCRACK_RETURN_NOT_OK(BuildEngine(node.children[0], base, config, &inner));
  if (node.head == "audit") {
    *out = std::make_unique<AuditEngine>(std::move(inner));
  } else if (node.head == "epoch") {
    *out = std::make_unique<EpochEngine>(std::move(inner));
  } else {
    ChaosOptions options;
    options.seed = config.seed;
    *out = std::make_unique<ChaosEngine>(std::move(inner), options);
  }
  return Status::OK();
}

/// prog(B,<inner>) — budgeted progressive cracking: at most B tuple swaps
/// of reorganization per query, scan fallback for the uncracked remainder.
/// The inner spec is restricted to plain cracking (crack / crack-pN): the
/// budget needs query-driven cracks whose completed layout is position-
/// identical to the unbudgeted engine's, which the stochastic variants'
/// random pivots are not.
Status BuildProg(const EngineSpec& node, const Column* base,
                 const EngineConfig& config,
                 std::unique_ptr<SelectEngine>* out) {
  const std::string display = node.ToString();
  if (node.form != Form::kCall) {
    return Status::InvalidArgument(
        "prog spec must be prog(B,<inner>) with B a per-query swap budget "
        "(or inf), e.g. prog(5000,crack): " + display);
  }
  if (node.children.size() != 2) {
    return Status::InvalidArgument(
        "prog needs a budget and an inner spec, e.g. prog(5000,crack): " +
        display);
  }
  const std::string budget_text = ScalarText(node.children[0]);
  int64_t budget = 0;
  if (budget_text == "inf" || budget_text == "0") {
    budget = 0;  // unlimited — behaves exactly like plain cracking
  } else if (!budget_text.empty() &&
             budget_text.find_first_not_of("0123456789") ==
                 std::string::npos) {
    budget = std::strtoll(budget_text.c_str(), nullptr, 10);
    if (budget < 1) {
      return Status::InvalidArgument("prog budget must be >= 1 (or inf): " +
                                     display);
    }
  } else {
    return Status::InvalidArgument(
        "bad prog budget (tuple swaps per query, or inf): " + display);
  }
  EngineConfig cfg = config;
  cfg.swap_budget = budget;
  const std::string inner_spec = node.children[1].ToString();
  std::string inner_name = ScalarText(node.children[1]);
  SCRACK_RETURN_NOT_OK(StripParallelSuffix(&inner_name, &cfg, display));
  if (inner_name != "crack") {
    return Status::InvalidArgument(
        "prog composes over plain cracking only; the inner spec must be "
        "crack or crack-pN (wrap prog itself for more: "
        "epoch(prog(5000,crack))): " + display);
  }
  *out = std::make_unique<BudgetedEngine>(base, cfg, inner_spec);
  return Status::OK();
}

/// The leaf registry: plain engine names plus an optional scalar ':'
/// argument, after the -p suffix has been stripped into `cfg`.
Status BuildLeaf(const std::string& name, const std::string& arg,
                 const std::string& display, const Column* base,
                 const EngineConfig& cfg,
                 std::unique_ptr<SelectEngine>* out) {
  if (name == "scan") {
    *out = std::make_unique<ScanEngine>(base, cfg);
  } else if (name == "sort") {
    *out = std::make_unique<SortEngine>(base, cfg);
  } else if (name == "crack") {
    *out = std::make_unique<CrackEngine>(base, cfg);
  } else if (name == "ddc") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg, /*center_pivot=*/true,
                                              /*recursive=*/true);
  } else if (name == "ddr") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg,
                                              /*center_pivot=*/false,
                                              /*recursive=*/true);
  } else if (name == "dd1c") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg, /*center_pivot=*/true,
                                              /*recursive=*/false);
  } else if (name == "dd1r") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg,
                                              /*center_pivot=*/false,
                                              /*recursive=*/false);
  } else if (name == "mdd1r" || name == "scrack") {
    *out = std::make_unique<Mdd1rEngine>(base, cfg);
  } else if (name == "pmdd1r") {
    EngineConfig leaf_cfg = cfg;
    double pct = 10.0;
    if (!arg.empty() && !ParsePositive(arg, &pct)) {
      return Status::InvalidArgument("bad pmdd1r budget: " + arg);
    }
    if (pct > 100.0) {
      return Status::InvalidArgument("pmdd1r budget over 100%: " + arg);
    }
    leaf_cfg.progressive_budget = pct / 100.0;
    *out = std::make_unique<ProgressiveEngine>(base, leaf_cfg);
  } else if (name == "fiftyfifty") {
    *out = std::make_unique<SelectiveEngine>(base, cfg,
                                             SelectivePolicy::kFiftyFifty);
  } else if (name == "flipcoin") {
    *out =
        std::make_unique<SelectiveEngine>(base, cfg, SelectivePolicy::kFlipCoin);
  } else if (name == "sizesel") {
    *out = std::make_unique<SelectiveEngine>(base, cfg,
                                             SelectivePolicy::kSizeThreshold);
  } else if (name == "everyx") {
    EngineConfig leaf_cfg = cfg;
    double x = static_cast<double>(cfg.every_x);
    if (!arg.empty() && !ParsePositive(arg, &x)) {
      return Status::InvalidArgument("bad everyx period: " + arg);
    }
    leaf_cfg.every_x = static_cast<int64_t>(x);
    *out = std::make_unique<SelectiveEngine>(base, leaf_cfg,
                                             SelectivePolicy::kEveryX);
  } else if (name == "scrackmon") {
    EngineConfig leaf_cfg = cfg;
    double x = static_cast<double>(cfg.monitor_threshold);
    if (!arg.empty() && !ParsePositive(arg, &x)) {
      return Status::InvalidArgument("bad scrackmon threshold: " + arg);
    }
    leaf_cfg.monitor_threshold = static_cast<int64_t>(x);
    *out = std::make_unique<SelectiveEngine>(base, leaf_cfg,
                                             SelectivePolicy::kMonitor);
  } else if (name.size() > 6 && name.front() == 'r' &&
             name.substr(name.size() - 5) == "crack") {
    EngineConfig leaf_cfg = cfg;
    const std::string k = name.substr(1, name.size() - 6);
    double period = 0;
    if (!ParsePositive(k, &period)) {
      return Status::InvalidArgument("bad RkCrack spec: " + display);
    }
    leaf_cfg.inject_period = static_cast<int64_t>(period);
    *out = std::make_unique<RandomInjectEngine>(base, leaf_cfg);
  } else if (name == "auto") {
    *out = std::make_unique<AutoEngine>(base, cfg);
  } else if (name == "aicc" || name == "aics" || name == "aicc1r" ||
             name == "aics1r" || name == "aisc" || name == "aiss") {
    const HybridEngine::InitialOrg initial =
        (name[2] == 'c') ? HybridEngine::InitialOrg::kCrack
                         : HybridEngine::InitialOrg::kSort;
    const HybridEngine::FinalOrg org = (name[3] == 'c')
                                           ? HybridEngine::FinalOrg::kCrack
                                           : HybridEngine::FinalOrg::kSort;
    const bool stochastic = name.size() > 4;
    *out = std::make_unique<HybridEngine>(base, cfg, initial, org,
                                          stochastic);
  } else {
    return Status::InvalidArgument(
        "unknown engine spec: " + display +
        " (see KnownEngineSpecs() / `scrack_cli engines` for the grammar)");
  }
  return Status::OK();
}

/// Dispatches one parsed node: wrappers by head, everything else through
/// the leaf registry.
Status BuildEngine(const EngineSpec& node, const Column* base,
                   const EngineConfig& config,
                   std::unique_ptr<SelectEngine>* out) {
  const std::string& head = node.head;
  if (head == "sharded" || head == "coord") {
    if (node.form == Form::kName || node.form == Form::kColon) {
      return Status::InvalidArgument(
          (head == "coord" ? std::string("coord spec must be coord(K,")
                           : std::string("sharded spec must be sharded(P,")) +
          "<inner>): " + node.ToString());
    }
    return BuildPartitioned(node, base, config, out);
  }
  if (head == "audit" || head == "epoch" || head == "chaos") {
    if (node.form == Form::kColon) {
      // A wrapper written with ':' instead of parentheses (audit:crack)
      // would otherwise die as an unknown name.
      return Status::InvalidArgument(head + " is a wrapper: use " + head +
                                     "(<inner>), e.g. " + head + "(crack)");
    }
    return BuildWrapper(node, base, config, out);
  }
  if (head == "prog") {
    if (node.form == Form::kColon) {
      return Status::InvalidArgument(
          "prog is a wrapper: use prog(B,<inner>), e.g. prog(5000,crack)");
    }
    return BuildProg(node, base, config, out);
  }
  if (head == "threadsafe") {
    if (node.form != Form::kColon || node.children[0].ToString().empty()) {
      return Status::InvalidArgument("threadsafe needs an inner spec");
    }
    std::unique_ptr<SelectEngine> inner;
    SCRACK_RETURN_NOT_OK(BuildEngine(node.children[0], base, config, &inner));
    *out = std::make_unique<ThreadSafeEngine>(std::move(inner));
    return Status::OK();
  }
  // Leaves: "name", "name:scalar", with an optional -p/-pN suffix on the
  // name. A call form reaching here ("wibble(3)") is an unknown spec.
  const std::string display = node.ToString();
  if (node.form == Form::kCall) {
    return Status::InvalidArgument(
        "unknown engine spec: " + display +
        " (see KnownEngineSpecs() / `scrack_cli engines` for the grammar)");
  }
  std::string name = head;
  const std::string arg =
      node.form == Form::kColon ? node.children[0].ToString() : std::string();
  EngineConfig cfg = config;
  // "-p" / "-pN" suffix (crack-p, ddc-p8, dd1r-p4, ...): intra-query
  // parallel cracking with N threads (default: all hardware threads) from
  // the shared pool. Meaningful for the CrackerColumn engines — large
  // cracks run the parallel partition kernels past the adaptive cutover;
  // other engines accept the suffix but never fan out.
  SCRACK_RETURN_NOT_OK(StripParallelSuffix(&name, &cfg, display));
  return BuildLeaf(name, arg, display, base, cfg, out);
}

}  // namespace

Status CreateEngine(const std::string& spec, const Column* base,
                    const EngineConfig& config,
                    std::unique_ptr<SelectEngine>* out) {
  if (base == nullptr || out == nullptr) {
    return Status::InvalidArgument("null base column or output");
  }
  EngineSpec parsed;
  SCRACK_RETURN_NOT_OK(EngineSpec::Parse(spec, &parsed));
  return BuildEngine(parsed, base, config, out);
}

std::unique_ptr<SelectEngine> CreateEngineOrDie(const std::string& spec,
                                                const Column* base,
                                                const EngineConfig& config) {
  std::unique_ptr<SelectEngine> engine;
  const Status status = CreateEngine(spec, base, config, &engine);
  SCRACK_CHECK(status.ok());
  return engine;
}

std::vector<std::string> KnownEngineSpecs() {
  return {"scan",       "sort",       "crack",     "ddc",       "ddr",
          "dd1c",       "dd1r",       "mdd1r",     "pmdd1r:10", "fiftyfifty",
          "flipcoin",   "sizesel",    "everyx:2",  "scrackmon:1",
          "r2crack",    "aicc",       "aics",      "aicc1r",    "aics1r",
          "aisc",       "aiss",       "auto",      "threadsafe:mdd1r",
          "sharded(4,mdd1r)",         "crack-p",   "ddr-p2",
          "audit(crack)",             "audit(crack-p2)",
          "sharded(2,audit(ddc))",    "threadsafe:audit(mdd1r)",
          "epoch(crack)",             "epoch(crack-p)",
          "sharded(2,epoch(crack))",  "epoch(audit(mdd1r))",
          "prog(5000,crack)",         "prog(inf,crack)",
          "prog(5000,crack-p)",       "epoch(prog(5000,crack-p))",
          "chaos(crack)",             "chaos(audit(prog(5000,crack)))",
          "coord(4,crack)",           "coord(2,epoch(crack))",
          "coord(4,epoch(prog(5000,crack)))"};
}

namespace {

bool ContainsAudit(const EngineSpec& node) {
  if (node.head == "audit") return true;
  for (const EngineSpec& child : node.children) {
    if (ContainsAudit(child)) return true;
  }
  return false;
}

// Pushes the audit inside wrappers that fan out to inner engines: the
// auditor wants the column-owning leaf (ShardedEngine and the coordinator
// expose no single column — with coord, the audit runs *inside each
// storage node*; ThreadSafeEngine's lock must stay outside the audit so
// the audit pass runs under it). Epoch stays outside for the same reason
// as threadsafe, and chaos stays outside so the audit observes the
// *retried* call as one clean forwarded query. prog(B,crack) is itself a
// column-owning leaf; the default outside wrap is the right shape for it.
void PushAudit(EngineSpec* node) {
  if ((node->head == "sharded" || node->head == "coord") &&
      node->form == Form::kCall && node->children.size() == 2) {
    PushAudit(&node->children[1]);
    return;
  }
  if (node->head == "threadsafe" && node->form == Form::kColon &&
      !node->children.empty() && !node->children[0].ToString().empty()) {
    PushAudit(&node->children[0]);
    return;
  }
  if ((node->head == "epoch" || node->head == "chaos") &&
      node->form == Form::kCall && node->children.size() == 1) {
    PushAudit(&node->children[0]);
    return;
  }
  EngineSpec wrapped;
  wrapped.form = Form::kCall;
  wrapped.head = "audit";
  wrapped.children.push_back(std::move(*node));
  *node = std::move(wrapped);
}

std::string LowerTrimForAudit(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  std::string out = s.substr(begin, end - begin);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::string WrapSpecInAudit(const std::string& spec) {
  EngineSpec parsed;
  if (!EngineSpec::Parse(spec, &parsed).ok()) {
    // Malformed input: wrap textually so CreateEngine still reports the
    // structural error against something recognizable.
    return "audit(" + LowerTrimForAudit(spec) + ")";
  }
  if (ContainsAudit(parsed)) return parsed.ToString();
  PushAudit(&parsed);
  return parsed.ToString();
}

}  // namespace scrack
