#include "harness/engine_factory.h"

#include <cctype>
#include <cstdlib>

#include "audit/audit_engine.h"
#include "cracking/auto_engine.h"
#include "cracking/crack_engine.h"
#include "cracking/random_inject_engine.h"
#include "cracking/threadsafe_engine.h"
#include "cracking/scan_engine.h"
#include "cracking/selective_engine.h"
#include "cracking/sort_engine.h"
#include "cracking/stochastic_engine.h"
#include "hybrid/hybrid_engine.h"
#include "parallel/epoch_engine.h"
#include "parallel/sharded_engine.h"
#include "parallel/thread_pool.h"
#include "progressive/budgeted_engine.h"
#include "progressive/chaos_engine.h"

namespace scrack {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Splits "name:arg" into name and arg ("" if absent).
void SplitSpec(const std::string& spec, std::string* name, std::string* arg) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    *name = spec;
    arg->clear();
  } else {
    *name = spec.substr(0, colon);
    *arg = spec.substr(colon + 1);
  }
}

bool ParsePositive(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || v <= 0) return false;
  *out = v;
  return true;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// sharded(P,<inner>) — P range-partitioned shards, each running an
// independent engine built from the (recursively parsed) inner spec.
// `spec` is already lower-cased.
Status CreateShardedEngine(const std::string& spec, const Column* base,
                           const EngineConfig& config,
                           std::unique_ptr<SelectEngine>* out) {
  const std::string prefix = "sharded(";
  if (spec.size() <= prefix.size() + 1 ||
      spec.compare(0, prefix.size(), prefix) != 0 || spec.back() != ')') {
    return Status::InvalidArgument("sharded spec must be sharded(P,<inner>): " +
                                   spec);
  }
  const std::string body =
      spec.substr(prefix.size(), spec.size() - prefix.size() - 1);
  const size_t comma = body.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument("sharded needs an inner spec: " + spec);
  }
  const std::string count_text = Trim(body.substr(0, comma));
  const std::string inner_spec = Trim(body.substr(comma + 1));
  if (count_text.empty() ||
      count_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad shard count: " + spec);
  }
  const long shards = std::strtol(count_text.c_str(), nullptr, 10);
  if (shards < 1 || shards > ShardedEngine::kMaxShards) {
    return Status::InvalidArgument("shard count must be in [1, 1024]: " +
                                   spec);
  }
  if (inner_spec.empty()) {
    return Status::InvalidArgument("sharded needs an inner spec: " + spec);
  }
  const ShardedEngine::InnerFactory make_inner =
      [inner_spec, config](const Column* shard_base, int shard_index,
                           std::unique_ptr<SelectEngine>* inner) {
        EngineConfig shard_cfg = config;
        // Decorrelate the shards' stochastic pivot streams.
        shard_cfg.seed =
            config.seed + static_cast<uint64_t>(shard_index) *
                              0x9E3779B97F4A7C15ULL;
        return CreateEngine(inner_spec, shard_base, shard_cfg, inner);
      };
  return ShardedEngine::Create(base, static_cast<int>(shards), make_inner,
                               inner_spec, out);
}

// audit(<inner>) — recursively builds the inner spec and wraps it in the
// invariant auditor. `spec` is already lower-cased.
Status CreateAuditEngine(const std::string& spec, const Column* base,
                         const EngineConfig& config,
                         std::unique_ptr<SelectEngine>* out) {
  const std::string prefix = "audit(";
  if (spec.size() <= prefix.size() ||
      spec.compare(0, prefix.size(), prefix) != 0 || spec.back() != ')') {
    return Status::InvalidArgument("audit spec must be audit(<inner>): " +
                                   spec);
  }
  const std::string inner_spec =
      Trim(spec.substr(prefix.size(), spec.size() - prefix.size() - 1));
  if (inner_spec.empty()) {
    return Status::InvalidArgument("audit needs an inner spec: " + spec);
  }
  std::unique_ptr<SelectEngine> inner;
  SCRACK_RETURN_NOT_OK(CreateEngine(inner_spec, base, config, &inner));
  *out = std::make_unique<AuditEngine>(std::move(inner));
  return Status::OK();
}

// epoch(<inner>) — recursively builds the inner spec and wraps it in the
// reader-writer epoch layer. `spec` is already lower-cased.
Status CreateEpochEngine(const std::string& spec, const Column* base,
                         const EngineConfig& config,
                         std::unique_ptr<SelectEngine>* out) {
  const std::string prefix = "epoch(";
  if (spec.size() <= prefix.size() ||
      spec.compare(0, prefix.size(), prefix) != 0 || spec.back() != ')') {
    return Status::InvalidArgument("epoch spec must be epoch(<inner>): " +
                                   spec);
  }
  const std::string inner_spec =
      Trim(spec.substr(prefix.size(), spec.size() - prefix.size() - 1));
  if (inner_spec.empty()) {
    return Status::InvalidArgument("epoch needs an inner spec: " + spec);
  }
  std::unique_ptr<SelectEngine> inner;
  SCRACK_RETURN_NOT_OK(CreateEngine(inner_spec, base, config, &inner));
  *out = std::make_unique<EpochEngine>(std::move(inner));
  return Status::OK();
}

// prog(B,<inner>) — budgeted progressive cracking: at most B tuple swaps
// of reorganization per query, scan fallback for the uncracked remainder.
// The inner spec is restricted to plain cracking (crack / crack-pN): the
// budget needs query-driven cracks whose completed layout is position-
// identical to the unbudgeted engine's, which the stochastic variants'
// random pivots are not. `spec` is already lower-cased.
Status CreateProgEngine(const std::string& spec, const Column* base,
                        const EngineConfig& config,
                        std::unique_ptr<SelectEngine>* out) {
  const std::string prefix = "prog(";
  if (spec.size() <= prefix.size() ||
      spec.compare(0, prefix.size(), prefix) != 0 || spec.back() != ')') {
    return Status::InvalidArgument(
        "prog spec must be prog(B,<inner>) with B a per-query swap budget "
        "(or inf), e.g. prog(5000,crack): " + spec);
  }
  const std::string body =
      spec.substr(prefix.size(), spec.size() - prefix.size() - 1);
  const size_t comma = body.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument(
        "prog needs a budget and an inner spec, e.g. prog(5000,crack): " +
        spec);
  }
  const std::string budget_text = Trim(body.substr(0, comma));
  const std::string inner_spec = Trim(body.substr(comma + 1));
  int64_t budget = 0;
  if (budget_text == "inf" || budget_text == "0") {
    budget = 0;  // unlimited — behaves exactly like plain cracking
  } else if (!budget_text.empty() &&
             budget_text.find_first_not_of("0123456789") ==
                 std::string::npos) {
    budget = std::strtoll(budget_text.c_str(), nullptr, 10);
    if (budget < 1) {
      return Status::InvalidArgument("prog budget must be >= 1 (or inf): " +
                                     spec);
    }
  } else {
    return Status::InvalidArgument(
        "bad prog budget (tuple swaps per query, or inf): " + spec);
  }
  EngineConfig cfg = config;
  cfg.swap_budget = budget;
  std::string inner_name = inner_spec;
  const size_t dash_p = inner_name.rfind("-p");
  if (dash_p != std::string::npos && dash_p > 0) {
    const std::string count = inner_name.substr(dash_p + 2);
    if (count.find_first_not_of("0123456789") == std::string::npos) {
      long threads = ThreadPool::DefaultThreads();
      if (!count.empty()) threads = std::strtol(count.c_str(), nullptr, 10);
      if (threads < 1 || threads > 1024) {
        return Status::InvalidArgument(
            "parallel thread count out of range [1, 1024]: " + spec);
      }
      cfg.parallel_threads = static_cast<int>(threads);
      inner_name = inner_name.substr(0, dash_p);
    }
  }
  if (inner_name != "crack") {
    return Status::InvalidArgument(
        "prog composes over plain cracking only; the inner spec must be "
        "crack or crack-pN (wrap prog itself for more: "
        "epoch(prog(5000,crack))): " + spec);
  }
  *out = std::make_unique<BudgetedEngine>(base, cfg, inner_spec);
  return Status::OK();
}

// chaos(<inner>) — recursively builds the inner spec and wraps it in the
// seeded fault-injection decorator. `spec` is already lower-cased.
Status CreateChaosEngine(const std::string& spec, const Column* base,
                         const EngineConfig& config,
                         std::unique_ptr<SelectEngine>* out) {
  const std::string prefix = "chaos(";
  if (spec.size() <= prefix.size() ||
      spec.compare(0, prefix.size(), prefix) != 0 || spec.back() != ')') {
    return Status::InvalidArgument("chaos spec must be chaos(<inner>): " +
                                   spec);
  }
  const std::string inner_spec =
      Trim(spec.substr(prefix.size(), spec.size() - prefix.size() - 1));
  if (inner_spec.empty()) {
    return Status::InvalidArgument("chaos needs an inner spec: " + spec);
  }
  std::unique_ptr<SelectEngine> inner;
  SCRACK_RETURN_NOT_OK(CreateEngine(inner_spec, base, config, &inner));
  ChaosOptions options;
  options.seed = config.seed;
  *out = std::make_unique<ChaosEngine>(std::move(inner), options);
  return Status::OK();
}

}  // namespace

Status CreateEngine(const std::string& spec, const Column* base,
                    const EngineConfig& config,
                    std::unique_ptr<SelectEngine>* out) {
  if (base == nullptr || out == nullptr) {
    return Status::InvalidArgument("null base column or output");
  }
  const std::string lowered = Lower(spec);
  // Catch structurally broken nested specs up front with a specific
  // message — "sharded(2,epoch(crack)" should say what is missing, not
  // fall through to "unknown engine spec".
  {
    int64_t depth = 0;
    for (const char c : lowered) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth < 0) break;
    }
    if (depth != 0) {
      return Status::InvalidArgument(
          "unbalanced parentheses in engine spec: " + spec);
    }
  }
  // The wrappers carry nested specs that may themselves contain ':' and
  // ',', so they are parsed before the simple name:arg split.
  if (lowered.compare(0, 7, "sharded") == 0) {
    return CreateShardedEngine(lowered, base, config, out);
  }
  if (lowered.compare(0, 6, "audit(") == 0 || lowered == "audit") {
    return CreateAuditEngine(lowered, base, config, out);
  }
  if (lowered.compare(0, 6, "epoch(") == 0 || lowered == "epoch") {
    return CreateEpochEngine(lowered, base, config, out);
  }
  if (lowered.compare(0, 5, "prog(") == 0 || lowered == "prog") {
    return CreateProgEngine(lowered, base, config, out);
  }
  if (lowered.compare(0, 6, "chaos(") == 0 || lowered == "chaos") {
    return CreateChaosEngine(lowered, base, config, out);
  }
  std::string name;
  std::string arg;
  SplitSpec(lowered, &name, &arg);
  // A wrapper written with ':' instead of parentheses (audit:crack) would
  // otherwise die as an unknown name.
  if (!arg.empty() &&
      (name == "audit" || name == "epoch" || name == "chaos")) {
    return Status::InvalidArgument(name + " is a wrapper: use " + name +
                                   "(<inner>), e.g. " + name + "(crack)");
  }
  if (!arg.empty() && name == "prog") {
    return Status::InvalidArgument(
        "prog is a wrapper: use prog(B,<inner>), e.g. prog(5000,crack)");
  }
  EngineConfig cfg = config;

  // "-p" / "-pN" suffix (crack-p, ddc-p8, dd1r-p4, ...): intra-query
  // parallel cracking with N threads (default: all hardware threads) from
  // the shared pool. Meaningful for the CrackerColumn engines — large
  // cracks run the parallel partition kernels past the adaptive cutover;
  // other engines accept the suffix but never fan out.
  const size_t dash_p = name.rfind("-p");
  if (dash_p != std::string::npos && dash_p > 0) {
    const std::string count = name.substr(dash_p + 2);
    if (count.find_first_not_of("0123456789") == std::string::npos) {
      long threads = ThreadPool::DefaultThreads();
      if (!count.empty()) threads = std::strtol(count.c_str(), nullptr, 10);
      if (threads < 1 || threads > 1024) {
        return Status::InvalidArgument("parallel thread count out of range "
                                       "[1, 1024]: " + spec);
      }
      cfg.parallel_threads = static_cast<int>(threads);
      name = name.substr(0, dash_p);
    }
  }

  if (name == "scan") {
    *out = std::make_unique<ScanEngine>(base, cfg);
  } else if (name == "sort") {
    *out = std::make_unique<SortEngine>(base, cfg);
  } else if (name == "crack") {
    *out = std::make_unique<CrackEngine>(base, cfg);
  } else if (name == "ddc") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg, /*center_pivot=*/true,
                                              /*recursive=*/true);
  } else if (name == "ddr") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg,
                                              /*center_pivot=*/false,
                                              /*recursive=*/true);
  } else if (name == "dd1c") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg, /*center_pivot=*/true,
                                              /*recursive=*/false);
  } else if (name == "dd1r") {
    *out = std::make_unique<DataDrivenEngine>(base, cfg,
                                              /*center_pivot=*/false,
                                              /*recursive=*/false);
  } else if (name == "mdd1r" || name == "scrack") {
    *out = std::make_unique<Mdd1rEngine>(base, cfg);
  } else if (name == "pmdd1r") {
    double pct = 10.0;
    if (!arg.empty() && !ParsePositive(arg, &pct)) {
      return Status::InvalidArgument("bad pmdd1r budget: " + arg);
    }
    if (pct > 100.0) {
      return Status::InvalidArgument("pmdd1r budget over 100%: " + arg);
    }
    cfg.progressive_budget = pct / 100.0;
    *out = std::make_unique<ProgressiveEngine>(base, cfg);
  } else if (name == "fiftyfifty") {
    *out = std::make_unique<SelectiveEngine>(base, cfg,
                                             SelectivePolicy::kFiftyFifty);
  } else if (name == "flipcoin") {
    *out =
        std::make_unique<SelectiveEngine>(base, cfg, SelectivePolicy::kFlipCoin);
  } else if (name == "sizesel") {
    *out = std::make_unique<SelectiveEngine>(base, cfg,
                                             SelectivePolicy::kSizeThreshold);
  } else if (name == "everyx") {
    double x = static_cast<double>(cfg.every_x);
    if (!arg.empty() && !ParsePositive(arg, &x)) {
      return Status::InvalidArgument("bad everyx period: " + arg);
    }
    cfg.every_x = static_cast<int64_t>(x);
    *out =
        std::make_unique<SelectiveEngine>(base, cfg, SelectivePolicy::kEveryX);
  } else if (name == "scrackmon") {
    double x = static_cast<double>(cfg.monitor_threshold);
    if (!arg.empty() && !ParsePositive(arg, &x)) {
      return Status::InvalidArgument("bad scrackmon threshold: " + arg);
    }
    cfg.monitor_threshold = static_cast<int64_t>(x);
    *out =
        std::make_unique<SelectiveEngine>(base, cfg, SelectivePolicy::kMonitor);
  } else if (name.size() > 6 && name.front() == 'r' &&
             name.substr(name.size() - 5) == "crack") {
    const std::string k = name.substr(1, name.size() - 6);
    double period = 0;
    if (!ParsePositive(k, &period)) {
      return Status::InvalidArgument("bad RkCrack spec: " + spec);
    }
    cfg.inject_period = static_cast<int64_t>(period);
    *out = std::make_unique<RandomInjectEngine>(base, cfg);
  } else if (name == "auto") {
    *out = std::make_unique<AutoEngine>(base, cfg);
  } else if (name == "threadsafe") {
    if (arg.empty()) {
      return Status::InvalidArgument("threadsafe needs an inner spec");
    }
    std::unique_ptr<SelectEngine> inner;
    SCRACK_RETURN_NOT_OK(CreateEngine(arg, base, cfg, &inner));
    *out = std::make_unique<ThreadSafeEngine>(std::move(inner));
  } else if (name == "aicc" || name == "aics" || name == "aicc1r" ||
             name == "aics1r" || name == "aisc" || name == "aiss") {
    const HybridEngine::InitialOrg initial =
        (name[2] == 'c') ? HybridEngine::InitialOrg::kCrack
                         : HybridEngine::InitialOrg::kSort;
    const HybridEngine::FinalOrg org = (name[3] == 'c')
                                           ? HybridEngine::FinalOrg::kCrack
                                           : HybridEngine::FinalOrg::kSort;
    const bool stochastic = name.size() > 4;
    *out = std::make_unique<HybridEngine>(base, cfg, initial, org,
                                          stochastic);
  } else {
    return Status::InvalidArgument(
        "unknown engine spec: " + spec +
        " (see KnownEngineSpecs() / `scrack_cli engines` for the grammar)");
  }
  return Status::OK();
}

std::unique_ptr<SelectEngine> CreateEngineOrDie(const std::string& spec,
                                                const Column* base,
                                                const EngineConfig& config) {
  std::unique_ptr<SelectEngine> engine;
  const Status status = CreateEngine(spec, base, config, &engine);
  SCRACK_CHECK(status.ok());
  return engine;
}

std::vector<std::string> KnownEngineSpecs() {
  return {"scan",       "sort",       "crack",     "ddc",       "ddr",
          "dd1c",       "dd1r",       "mdd1r",     "pmdd1r:10", "fiftyfifty",
          "flipcoin",   "sizesel",    "everyx:2",  "scrackmon:1",
          "r2crack",    "aicc",       "aics",      "aicc1r",    "aics1r",
          "aisc",       "aiss",       "auto",      "threadsafe:mdd1r",
          "sharded(4,mdd1r)",         "crack-p",   "ddr-p2",
          "audit(crack)",             "audit(crack-p2)",
          "sharded(2,audit(ddc))",    "threadsafe:audit(mdd1r)",
          "epoch(crack)",             "epoch(crack-p)",
          "sharded(2,epoch(crack))",  "epoch(audit(mdd1r))",
          "prog(5000,crack)",         "prog(inf,crack)",
          "prog(5000,crack-p)",       "epoch(prog(5000,crack-p))",
          "chaos(crack)",             "chaos(audit(prog(5000,crack)))"};
}

std::string WrapSpecInAudit(const std::string& spec) {
  const std::string lowered = Lower(Trim(spec));
  if (lowered.find("audit(") != std::string::npos) return lowered;
  // Push the audit inside wrappers that fan out to inner engines: the
  // auditor wants the column-owning leaf (ShardedEngine exposes no single
  // column; ThreadSafeEngine's lock must stay outside the audit so the
  // audit pass runs under it).
  const std::string sharded_prefix = "sharded(";
  if (lowered.compare(0, sharded_prefix.size(), sharded_prefix) == 0 &&
      lowered.back() == ')') {
    const std::string body = lowered.substr(
        sharded_prefix.size(), lowered.size() - sharded_prefix.size() - 1);
    const size_t comma = body.find(',');
    if (comma != std::string::npos) {
      return sharded_prefix + Trim(body.substr(0, comma)) + "," +
             WrapSpecInAudit(body.substr(comma + 1)) + ")";
    }
  }
  const std::string threadsafe_prefix = "threadsafe:";
  if (lowered.compare(0, threadsafe_prefix.size(), threadsafe_prefix) == 0) {
    return threadsafe_prefix +
           WrapSpecInAudit(lowered.substr(threadsafe_prefix.size()));
  }
  // Epoch stays outside the audit for the same reason as threadsafe: the
  // auditor's between-query passes must run under the epoch's lock.
  const std::string epoch_prefix = "epoch(";
  if (lowered.compare(0, epoch_prefix.size(), epoch_prefix) == 0 &&
      lowered.back() == ')') {
    const std::string body = lowered.substr(
        epoch_prefix.size(), lowered.size() - epoch_prefix.size() - 1);
    return epoch_prefix + WrapSpecInAudit(body) + ")";
  }
  // Chaos stays outside too: the audit must observe the *retried* call as
  // one clean forwarded query, with the injected abort invisible to its
  // call counting.
  const std::string chaos_prefix = "chaos(";
  if (lowered.compare(0, chaos_prefix.size(), chaos_prefix) == 0 &&
      lowered.back() == ')') {
    const std::string body = lowered.substr(
        chaos_prefix.size(), lowered.size() - chaos_prefix.size() - 1);
    return chaos_prefix + WrapSpecInAudit(body) + ")";
  }
  // prog(B,crack) is itself a column-owning leaf; the default outside wrap
  // below is the right shape for it.
  return "audit(" + lowered + ")";
}

}  // namespace scrack
