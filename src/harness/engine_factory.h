// EngineFactory: create any indexing strategy from a textual spec.
//
// This is the composition layer that ties the cracking and hybrid modules
// together; benches, tests and examples name engines by spec string:
//
//   scan | sort | crack
//   ddc | ddr | dd1c | dd1r
//   mdd1r (alias: scrack)
//   pmdd1r:<percent>        e.g. pmdd1r:10  (P10%)
//   fiftyfifty | flipcoin | sizesel
//   everyx:<k>              stochastic every k-th query (Fig. 18)
//   scrackmon:<x>           monitoring threshold x (Fig. 19)
//   r<k>crack               naive random injection every k queries (Fig. 12)
//   aicc | aics | aicc1r | aics1r
//   threadsafe:<inner>      exclusive lock + materialize around any engine
//   sharded(P,<inner>)      P range-partitioned shards, each an independent
//                           <inner> engine, fanned out on a thread pool
//   audit(<inner>)          invariant auditor around any engine: validates
//                           index order, piece partitioning, multiset and
//                           stats conservation, single-writer discipline
//                           after every call (audit/audit_engine.h)
//   epoch(<inner>)          epoch-based reader/writer serving around any
//                           engine: wait-free reads over a published
//                           snapshot, staged writes (serve/epoch_engine.h)
//   prog(B,<inner>)         per-query swap budget B over plain cracking
//                           (B = "inf" disables); progressive/budgeted_engine.h
//   chaos(<inner>)          seeded fault injection around any engine
//   coord(K,<inner>)        multi-node serving: a coordinator routes range
//                           queries over a versioned wire protocol to K
//                           value-range-partitioned storage nodes (each an
//                           independent <inner> engine), pruning nodes whose
//                           [min,max] cannot intersect and merging partials;
//                           failed nodes degrade reads instead of failing
//                           them (distributed/coordinator_engine.h)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

/// Instantiates the engine named by `spec` over `base` (which must outlive
/// the engine). Spec parameters override the corresponding config fields.
Status CreateEngine(const std::string& spec, const Column* base,
                    const EngineConfig& config,
                    std::unique_ptr<SelectEngine>* out);

/// Convenience wrapper that aborts on bad specs (benches/examples).
std::unique_ptr<SelectEngine> CreateEngineOrDie(const std::string& spec,
                                                const Column* base,
                                                const EngineConfig& config);

/// Specs accepted by CreateEngine (parameterized ones listed with defaults).
std::vector<std::string> KnownEngineSpecs();

/// Rewrites `spec` so every leaf engine is wrapped in audit(...). The audit
/// is pushed *inside* sharded/coord/threadsafe/epoch/chaos wrappers — each
/// partition's column gets its own auditor; an outer audit over a partitioned
/// engine could check only stats. Specs already containing an audit are
/// returned unchanged.
std::string WrapSpecInAudit(const std::string& spec);

}  // namespace scrack
