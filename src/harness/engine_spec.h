// EngineSpec: the parsed AST behind the textual engine-spec grammar.
//
// Engine specs ("crack", "pmdd1r:10", "coord(4,epoch(prog(5000,crack)))")
// are the stable user-facing surface — CLI flags, repro figure decls,
// serve-harness engine lists. They used to be composed and decomposed by
// string splicing scattered through the factory; this AST replaces that:
// Parse once into a tree, transform structurally (e.g. WrapSpecInAudit
// pushing an audit node inside wrappers), render back with ToString.
//
// Grammar (case-insensitive; whitespace around elements ignored):
//   spec  ::= name                      -- leaf: "crack", "mdd1r", "crack-p4"
//           | name ":" spec             -- colon arg: "pmdd1r:10",
//                                          "threadsafe:audit(crack)"
//           | name "(" spec ("," spec)* ")"   -- call: "epoch(crack)",
//                                                "sharded(4,mdd1r)"
// Scalar arguments ("5000", "inf", "10") parse as name leaves; which
// elements are scalars vs nested specs is the builder's decision, not the
// parser's — Parse is purely structural and never consults the engine
// registry. ToString renders the canonical lower-case, space-free form and
// round-trips: Parse(s).ToString() == Parse(Parse(s).ToString()).ToString().
//
// Structured errors: Parse rejects unbalanced parentheses and dangling
// call syntax with InvalidArgument naming the offending spec; everything
// else (unknown names, bad arities, bad scalar values) is diagnosed by the
// factory against the parsed tree, so error messages can say what is wrong
// with the *structure* rather than where a substring search gave up.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace scrack {

struct EngineSpec {
  enum class Form {
    kName,   ///< bare name (or scalar argument): head only
    kColon,  ///< head ":" child — exactly one child
    kCall,   ///< head "(" children... ")" — zero or more children
  };

  Form form = Form::kName;
  std::string head;  ///< lower-cased name token; may be empty for a missing
                     ///  element ("chaos()"), which builders diagnose
  std::vector<EngineSpec> children;

  /// Parses `text` into `*out`. Lower-cases, trims, and validates paren
  /// structure; see the grammar above for what is and is not a parse error.
  static Status Parse(const std::string& text, EngineSpec* out);

  /// Canonical rendering: lower-case, no whitespace. Round-trips through
  /// Parse.
  std::string ToString() const;
};

}  // namespace scrack
