// AdaptiveStore: the user-facing facade of the library.
//
// A tiny column-store whose columns answer range selections through a
// configurable adaptive-indexing engine (default MDD1R, the paper's
// recommended robust strategy). This is what a downstream application
// embeds; the examples/ directory shows it in use.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

class AdaptiveStore {
 public:
  explicit AdaptiveStore(EngineConfig config = {}) : config_(config) {}

  /// Registers a column under `name`, indexed by the engine named by
  /// `engine_spec` (see engine_factory.h for the spec grammar).
  Status AddColumn(const std::string& name, Column column,
                   const std::string& engine_spec = "mdd1r");

  /// Range select [low, high) on a named column.
  Status Select(const std::string& name, Value low, Value high,
                QueryResult* result);

  /// Executes one Query (range + output mode) on a named column. Aggregate
  /// modes (kCount/kSum/kMinMax/kExists) let the engine push the fold below
  /// materialization — the cheap path for dashboard-style workloads.
  Status Execute(const std::string& name, const Query& query,
                 QueryOutput* output);

  /// Executes a batch of queries on a named column with amortized per-query
  /// overhead; outputs[i] answers queries[i].
  Status ExecuteBatch(const std::string& name,
                      const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs);

  /// Stages an insert/delete on a named column (merged adaptively).
  Status Insert(const std::string& name, Value v);
  Status Delete(const std::string& name, Value v);

  /// The engine behind a column (nullptr if absent) — for stats inspection.
  SelectEngine* engine(const std::string& name);

  size_t num_columns() const { return columns_.size(); }

 private:
  struct Entry {
    Column base;
    std::unique_ptr<SelectEngine> engine;
  };

  EngineConfig config_;
  std::map<std::string, Entry> columns_;  // node-based: Entry addresses stable
};

}  // namespace scrack
