#include "harness/report.h"

#include <cstdio>
#include <cstdlib>

#include "harness/csv.h"

namespace scrack {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> row) {
  SCRACK_CHECK(row.size() == rows_[0].size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      const std::string& cell = rows_[r][c];
      // Left-align the first column, right-align the rest.
      if (c == 0) {
        out += cell;
        out.append(widths[c] - cell.size() + 2, ' ');
      } else {
        out.append(widths[c] - cell.size(), ' ');
        out += cell;
        out.append(2, ' ');
      }
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t w : widths) total += w + 2;
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TextTable::Num(double v) {
  char buf[64];
  if (v == 0) return "0";
  if (v >= 1000 || v <= -1000) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::vector<QueryId> LogSpacedPoints(QueryId q) {
  std::vector<QueryId> points;
  for (QueryId p = 1; p < q; p *= 2) points.push_back(p);
  if (q >= 1) points.push_back(q);
  return points;
}

namespace {

void PrintCurveTable(const std::string& title,
                     const std::vector<RunResult>& runs,
                     const std::vector<QueryId>& points,
                     const std::function<std::string(const RunResult&,
                                                     QueryId)>& cell) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> header = {"query#"};
  for (const RunResult& run : runs) header.push_back(run.engine_name);
  TextTable table(std::move(header));
  for (QueryId p : points) {
    std::vector<std::string> row = {std::to_string(p)};
    for (const RunResult& run : runs) row.push_back(cell(run, p));
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

void PrintCumulativeCurves(const std::string& title,
                           const std::vector<RunResult>& runs,
                           const std::vector<QueryId>& points) {
  PrintCurveTable(title + " — cumulative response time (secs)", runs, points,
                  [](const RunResult& run, QueryId p) {
                    return TextTable::Num(run.CumulativeSeconds(p));
                  });
  // Optional raw export for external plotting (see csv.h).
  const char* csv_dir = std::getenv("SCRACK_CSV_DIR");
  if (csv_dir != nullptr && *csv_dir != '\0') {
    const Status status = WriteRunsCsv(runs, csv_dir, title);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV export failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

void PrintPerQueryCurves(const std::string& title,
                         const std::vector<RunResult>& runs,
                         const std::vector<QueryId>& points) {
  PrintCurveTable(
      title + " — per-query response time (secs)", runs, points,
      [](const RunResult& run, QueryId p) {
        if (p < 1 || p > static_cast<QueryId>(run.records.size())) return
            std::string("-");
        return TextTable::Num(
            run.records[static_cast<size_t>(p - 1)].seconds);
      });
}

void PrintTouchedCurves(const std::string& title,
                        const std::vector<RunResult>& runs,
                        const std::vector<QueryId>& points) {
  PrintCurveTable(title + " — tuples touched by query (per query)", runs,
                  points, [](const RunResult& run, QueryId p) {
                    if (p < 1 ||
                        p > static_cast<QueryId>(run.records.size())) {
                      return std::string("-");
                    }
                    return std::to_string(
                        run.records[static_cast<size_t>(p - 1)].touched);
                  });
}

int64_t EnvInt64(const char* name, int64_t def) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return def;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return def;
  return static_cast<int64_t>(v);
}

}  // namespace scrack
