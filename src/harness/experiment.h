// Experiment runner: executes a query sequence against an engine, recording
// the paper's metrics — per-query wall-clock time, tuples touched, result
// checksums — for the bench binaries to report.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "workload/workload.h"

namespace scrack {

/// Per-query measurements.
struct QueryRecord {
  double seconds = 0;        ///< wall-clock time of this query
  int64_t touched = 0;       ///< tuples touched by this query (stats delta)
  int64_t swaps = 0;         ///< element exchanges by this query (delta) —
                             ///  the reorganization volume progressive
                             ///  cracking budgets (paper §4)
  Index result_count = 0;    ///< qualifying tuples reported
  int64_t result_sum = 0;    ///< checksum of qualifying values
};

/// Options for RunQueries.
struct RunOptions {
  /// Run engine->Validate() after every query (tests; slow).
  bool validate_each_query = false;

  /// Invoked before each query — e.g. to stage updates (Fig. 15). A non-OK
  /// status aborts the run.
  std::function<Status(QueryId, SelectEngine*)> before_query;

  /// Output mode the queries are executed in. kMaterialize reproduces the
  /// classic Select path; aggregate modes exercise the pushdown path. The
  /// record's count/sum come from the aggregate: result_count is the true
  /// qualifying count for kMaterialize/kCount/kSum/kMinMax (so those
  /// checksums are comparable across modes), but in kExists mode it is the
  /// hit count capped at the probe limit (1 here); result_sum is nonzero
  /// only for kMaterialize/kSum.
  OutputMode mode = OutputMode::kMaterialize;
};

/// Outcome of a run.
struct RunResult {
  std::string engine_name;
  std::vector<QueryRecord> records;
  Status status;  ///< first failure, or OK

  /// Engine counters at the end of the run (aggregates_pushed,
  /// materialized, ... for the benches' tables).
  EngineStats final_stats;

  /// Sum of the first `upto` per-query times (all if upto < 0).
  double CumulativeSeconds(QueryId upto = -1) const;

  /// Sum of the first `upto` per-query touched counters (all if upto < 0).
  int64_t CumulativeTouched(QueryId upto = -1) const;
};

/// Runs `queries` through `engine`, timing each query.
RunResult RunQueries(SelectEngine* engine,
                     const std::vector<RangeQuery>& queries,
                     const RunOptions& options = {});

}  // namespace scrack
