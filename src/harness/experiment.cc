#include "harness/experiment.h"

#include "util/timer.h"

namespace scrack {

double RunResult::CumulativeSeconds(QueryId upto) const {
  if (upto < 0 || upto > static_cast<QueryId>(records.size())) {
    upto = static_cast<QueryId>(records.size());
  }
  double total = 0;
  for (QueryId i = 0; i < upto; ++i) {
    total += records[static_cast<size_t>(i)].seconds;
  }
  return total;
}

int64_t RunResult::CumulativeTouched(QueryId upto) const {
  if (upto < 0 || upto > static_cast<QueryId>(records.size())) {
    upto = static_cast<QueryId>(records.size());
  }
  int64_t total = 0;
  for (QueryId i = 0; i < upto; ++i) {
    total += records[static_cast<size_t>(i)].touched;
  }
  return total;
}

RunResult RunQueries(SelectEngine* engine,
                     const std::vector<RangeQuery>& queries,
                     const RunOptions& options) {
  SCRACK_CHECK(engine != nullptr);
  RunResult result;
  result.engine_name = engine->name();
  result.records.reserve(queries.size());
  for (QueryId i = 0; i < static_cast<QueryId>(queries.size()); ++i) {
    const RangeQuery& query = queries[static_cast<size_t>(i)];
    if (options.before_query) {
      result.status = options.before_query(i, engine);
      if (!result.status.ok()) return result;
    }
    const int64_t touched_before = engine->stats().tuples_touched;
    QueryRecord record;
    Timer timer;
    QueryResult query_result;
    result.status = engine->Select(query.low, query.high, &query_result);
    record.seconds = timer.ElapsedSeconds();
    if (!result.status.ok()) return result;
    record.touched = engine->stats().tuples_touched - touched_before;
    record.result_count = query_result.count();
    record.result_sum = query_result.Sum();
    result.records.push_back(record);
    if (options.validate_each_query) {
      result.status = engine->Validate();
      if (!result.status.ok()) return result;
    }
  }
  return result;
}

}  // namespace scrack
