#include "harness/experiment.h"

#include "util/timer.h"

namespace scrack {

double RunResult::CumulativeSeconds(QueryId upto) const {
  if (upto < 0 || upto > static_cast<QueryId>(records.size())) {
    upto = static_cast<QueryId>(records.size());
  }
  double total = 0;
  for (QueryId i = 0; i < upto; ++i) {
    total += records[static_cast<size_t>(i)].seconds;
  }
  return total;
}

int64_t RunResult::CumulativeTouched(QueryId upto) const {
  if (upto < 0 || upto > static_cast<QueryId>(records.size())) {
    upto = static_cast<QueryId>(records.size());
  }
  int64_t total = 0;
  for (QueryId i = 0; i < upto; ++i) {
    total += records[static_cast<size_t>(i)].touched;
  }
  return total;
}

RunResult RunQueries(SelectEngine* engine,
                     const std::vector<RangeQuery>& queries,
                     const RunOptions& options) {
  SCRACK_CHECK(engine != nullptr);
  RunResult result;
  result.engine_name = engine->name();
  result.records.reserve(queries.size());
  for (QueryId i = 0; i < static_cast<QueryId>(queries.size()); ++i) {
    const RangeQuery& query = queries[static_cast<size_t>(i)];
    if (options.before_query) {
      result.status = options.before_query(i, engine);
      if (!result.status.ok()) {
        result.final_stats = engine->CurrentStats();
        return result;
      }
    }
    const EngineStats before = engine->CurrentStats();
    QueryRecord record;
    Timer timer;
    QueryOutput output;
    result.status = engine->Execute(
        Query{query.low, query.high, options.mode, /*limit=*/1}, &output);
    record.seconds = timer.ElapsedSeconds();
    if (!result.status.ok()) {
      result.final_stats = engine->CurrentStats();
      return result;
    }
    const EngineStats after = engine->CurrentStats();
    record.touched = after.tuples_touched - before.tuples_touched;
    record.swaps = after.swaps - before.swaps;
    if (options.mode == OutputMode::kMaterialize) {
      record.result_count = output.result.count();
      record.result_sum = output.result.Sum();
    } else {
      record.result_count = output.count;
      record.result_sum = output.sum;  // zero except kSum
    }
    result.records.push_back(record);
    if (options.validate_each_query) {
      result.status = engine->Validate();
      if (!result.status.ok()) {
        result.final_stats = engine->CurrentStats();
        return result;
      }
    }
  }
  result.final_stats = engine->CurrentStats();
  return result;
}

}  // namespace scrack
