#include "harness/engine_spec.h"

#include <cctype>

namespace scrack {

namespace {

std::string LowerTrim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  std::string out = s.substr(begin, end - begin);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// `text` is lower-cased, trimmed, and balanced. `full` is the original
// user spec, for error messages.
Status ParseNode(const std::string& text, const std::string& full,
                 EngineSpec* out) {
  *out = EngineSpec{};
  const size_t paren = text.find('(');
  const size_t colon = text.find(':');

  if (colon != std::string::npos &&
      (paren == std::string::npos || colon < paren)) {
    // name ":" spec — the colon binds the head to everything after it
    // ("threadsafe:audit(crack)" is one colon node with a call child).
    out->form = EngineSpec::Form::kColon;
    out->head = text.substr(0, colon);
    out->children.emplace_back();
    return ParseNode(LowerTrim(text.substr(colon + 1)), full,
                     &out->children.back());
  }

  if (paren == std::string::npos) {
    out->form = EngineSpec::Form::kName;
    out->head = text;
    return Status::OK();
  }

  // name "(" children ")" — the opening paren's match must be the final
  // character; "a(b)c" and "a(b)(c)" are not in the grammar.
  if (text.back() != ')') {
    return Status::InvalidArgument(
        "malformed engine spec (text after closing parenthesis): " + full +
        " (see KnownEngineSpecs() / `scrack_cli engines` for the grammar)");
  }
  int64_t depth = 0;
  for (size_t i = paren; i + 1 < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') --depth;
    if (depth == 0) {
      return Status::InvalidArgument(
          "malformed engine spec (text after closing parenthesis): " + full +
          " (see KnownEngineSpecs() / `scrack_cli engines` for the grammar)");
    }
  }
  out->form = EngineSpec::Form::kCall;
  out->head = text.substr(0, paren);
  const std::string body =
      text.substr(paren + 1, text.size() - paren - 2);
  if (LowerTrim(body).empty()) {
    return Status::OK();  // "chaos()": zero children; builders diagnose
  }
  size_t element_begin = 0;
  depth = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size() && body[i] == '(') ++depth;
    if (i < body.size() && body[i] == ')') --depth;
    if (i == body.size() || (body[i] == ',' && depth == 0)) {
      out->children.emplace_back();
      SCRACK_RETURN_NOT_OK(
          ParseNode(LowerTrim(body.substr(element_begin, i - element_begin)),
                    full, &out->children.back()));
      element_begin = i + 1;
    }
  }
  return Status::OK();
}

}  // namespace

Status EngineSpec::Parse(const std::string& text, EngineSpec* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("null engine spec output");
  }
  const std::string lowered = LowerTrim(text);
  int64_t depth = 0;
  for (const char c : lowered) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth < 0) break;
  }
  if (depth != 0) {
    return Status::InvalidArgument("unbalanced parentheses in engine spec: " +
                                   text);
  }
  return ParseNode(lowered, text, out);
}

std::string EngineSpec::ToString() const {
  switch (form) {
    case Form::kName:
      return head;
    case Form::kColon:
      return head + ":" +
             (children.empty() ? std::string() : children[0].ToString());
    case Form::kCall: {
      std::string out = head + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ",";
        out += children[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return head;
}

}  // namespace scrack
