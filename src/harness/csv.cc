#include "harness/csv.h"

#include <cctype>
#include <cstdio>
#include <sys/stat.h>

namespace scrack {

std::string SanitizeFileName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '.') {
      c = '_';
    }
  }
  return out;
}

Status WriteRunCsv(const RunResult& run, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::fprintf(f,
               "query,seconds,cum_seconds,touched,cum_touched,swaps,"
               "result_count,result_sum\n");
  double cum_seconds = 0;
  int64_t cum_touched = 0;
  for (size_t i = 0; i < run.records.size(); ++i) {
    const QueryRecord& r = run.records[i];
    cum_seconds += r.seconds;
    cum_touched += r.touched;
    std::fprintf(f, "%zu,%.9f,%.9f,%lld,%lld,%lld,%lld,%lld\n", i + 1,
                 r.seconds, cum_seconds, static_cast<long long>(r.touched),
                 static_cast<long long>(cum_touched),
                 static_cast<long long>(r.swaps),
                 static_cast<long long>(r.result_count),
                 static_cast<long long>(r.result_sum));
  }
  if (std::fclose(f) != 0) {
    return Status::Internal("error closing " + path);
  }
  return Status::OK();
}

Status WriteRunsCsv(const std::vector<RunResult>& runs,
                    const std::string& dir, const std::string& prefix) {
  if (dir.empty()) return Status::OK();
  // Best-effort create; EEXIST is fine.
  ::mkdir(dir.c_str(), 0755);
  for (const RunResult& run : runs) {
    const std::string path =
        dir + "/" + SanitizeFileName(prefix) + "_" +
        SanitizeFileName(run.engine_name) + ".csv";
    SCRACK_RETURN_NOT_OK(WriteRunCsv(run, path));
  }
  return Status::OK();
}

}  // namespace scrack
