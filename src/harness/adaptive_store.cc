#include "harness/adaptive_store.h"

#include "harness/engine_factory.h"

namespace scrack {

Status AdaptiveStore::AddColumn(const std::string& name, Column column,
                                const std::string& engine_spec) {
  if (columns_.count(name) > 0) {
    return Status::InvalidArgument("duplicate column: " + name);
  }
  auto [it, inserted] = columns_.emplace(name, Entry{std::move(column), {}});
  SCRACK_CHECK(inserted);
  Status status =
      CreateEngine(engine_spec, &it->second.base, config_, &it->second.engine);
  if (!status.ok()) {
    columns_.erase(it);
    return status;
  }
  return Status::OK();
}

Status AdaptiveStore::Select(const std::string& name, Value low, Value high,
                             QueryResult* result) {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  return it->second.engine->Select(low, high, result);
}

Status AdaptiveStore::Execute(const std::string& name, const Query& query,
                              QueryOutput* output) {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  return it->second.engine->Execute(query, output);
}

Status AdaptiveStore::ExecuteBatch(const std::string& name,
                                   const std::vector<Query>& queries,
                                   std::vector<QueryOutput>* outputs) {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  return it->second.engine->ExecuteBatch(queries, outputs);
}

Status AdaptiveStore::Insert(const std::string& name, Value v) {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  return it->second.engine->StageInsert(v);
}

Status AdaptiveStore::Delete(const std::string& name, Value v) {
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  return it->second.engine->StageDelete(v);
}

SelectEngine* AdaptiveStore::engine(const std::string& name) {
  auto it = columns_.find(name);
  return it == columns_.end() ? nullptr : it->second.engine.get();
}

}  // namespace scrack
