// Plain-text reporting for the bench binaries: fixed-width tables and the
// log-spaced cumulative curves the paper plots.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace scrack {

/// Fixed-width text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with columns padded to their widest cell.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  /// Formats a double with 4 significant digits ("0.1234", "12.34", "1234").
  static std::string Num(double v);

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Log-spaced query indices 1, 2, 4, ..., covering [1, q] and ending at q.
std::vector<QueryId> LogSpacedPoints(QueryId q);

/// Prints one table of cumulative response time (seconds): a row per
/// checkpoint in `points`, a column per run.
void PrintCumulativeCurves(const std::string& title,
                           const std::vector<RunResult>& runs,
                           const std::vector<QueryId>& points);

/// As above but per-query response time at the checkpoint.
void PrintPerQueryCurves(const std::string& title,
                         const std::vector<RunResult>& runs,
                         const std::vector<QueryId>& points);

/// As above but cumulative tuples touched.
void PrintTouchedCurves(const std::string& title,
                        const std::vector<RunResult>& runs,
                        const std::vector<QueryId>& points);

/// Reads environment overrides for the bench sizes:
/// SCRACK_N (column size), SCRACK_Q (queries). Returns `def` when unset or
/// malformed.
int64_t EnvInt64(const char* name, int64_t def);

}  // namespace scrack
