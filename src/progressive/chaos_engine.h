// ChaosEngine: seeded fault injection over any inner engine
// (chaos(<inner>) in the engine factory).
//
// On a deterministic schedule (every `period`-th Select/Execute call), the
// decorator arms the thread-local fault injector (util/fault.h) before
// forwarding, so one of the named fault points inside the call — "alloc",
// "merge", "partition", "slice", "register" — throws mid-mutation. The
// unwound call is then retried once with faults disarmed. Because every
// fault point sits where an exception leaves the CrackerColumn in an
// invariant-preserving state, the retry returns exactly the answer a
// fault-free run would have produced; composing chaos(audit(<inner>))
// proves it, since the auditor re-checks index order, piece partitions,
// and multiset conservation after the retried call.
//
// Which crossing faults is derived from (seed, call index) with a splitmix
// step, so runs are reproducible and successive injections land on
// different points. SCRACK_FAULTS=<period> or
// SCRACK_FAULTS=period=<p>,seed=<s> overrides the defaults.
//
// Scope: faults are injected on Select and non-materialize Execute only.
// ExecuteBatch forwards unarmed — a fault mid-batch followed by a full
// re-run would double-count the batch's completed prefix against the
// auditor's strict query-count law. Stage* forwards untouched. The audit
// strictness guarantee holds for inner engines that count a query only
// after it completes (crack, prog); engines that pre-increment would show
// the aborted attempt in their query counter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "cracking/engine.h"

namespace scrack {

struct ChaosOptions {
  int64_t period = 3;     ///< inject on every period-th call (0 = never)
  uint64_t seed = 0x5eed;  ///< picks which fault-point crossing fires
};

class ChaosEngine : public SelectEngine {
 public:
  /// Options resolve SCRACK_FAULTS (env) over `options`.
  ChaosEngine(std::unique_ptr<SelectEngine> inner, const ChaosOptions& options);

  Status Select(Value low, Value high, QueryResult* result) override;
  Status Execute(const Query& query, QueryOutput* output) override;
  Status ExecuteBatch(const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs) override {
    return inner_->ExecuteBatch(queries, outputs);
  }

  Status StageInsert(Value v) override { return inner_->StageInsert(v); }
  Status StageDelete(Value v) override { return inner_->StageDelete(v); }

  std::string name() const override {
    return "chaos(" + inner_->name() + ")";
  }
  EngineStats CurrentStats() const override { return inner_->CurrentStats(); }
  Status Validate() const override { return inner_->Validate(); }
  const CrackerColumn* audit_column() const override {
    return inner_->audit_column();
  }

  /// Faults that actually fired (a scheduled injection whose countdown
  /// outlasts the call's fault points fires nothing).
  int64_t faults_injected() const { return faults_injected_; }
  /// Retries taken after a fired fault (== faults_injected: every fault is
  /// retried exactly once).
  int64_t retries() const { return retries_; }
  /// Name of the most recent point that fired (empty before the first).
  const std::string& last_fault_point() const { return last_fault_point_; }

  SelectEngine* inner() { return inner_.get(); }

 private:
  /// Arms the injector if this call is scheduled for an injection.
  void MaybeArm();
  /// Disarms and records a fired fault.
  void NoteFault(const char* point);

  std::unique_ptr<SelectEngine> inner_;
  ChaosOptions options_;
  int64_t calls_ = 0;
  int64_t faults_injected_ = 0;
  int64_t retries_ = 0;
  std::string last_fault_point_;
};

}  // namespace scrack
