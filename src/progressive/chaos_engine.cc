#include "progressive/chaos_engine.h"

#include <cstdlib>
#include <cstring>

#include "util/fault.h"

namespace scrack {

namespace {

// splitmix64 finalizer: decorrelates (seed, call index) into a crossing
// pick without any global RNG state.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// A cold query crosses only a handful of points; cycling the target
// crossing through [1, 8] hits every point class across a short run while
// letting some scheduled injections miss entirely (the countdown outlives
// the call) — which is itself a case worth exercising.
constexpr uint64_t kMaxCrossing = 8;

ChaosOptions ResolveOptions(const ChaosOptions& options) {
  ChaosOptions resolved = options;
  const char* env = std::getenv("SCRACK_FAULTS");
  if (env == nullptr || *env == '\0') return resolved;
  // Accepts "<period>" or "period=<p>,seed=<s>" (either key optional).
  if (std::strchr(env, '=') == nullptr) {
    const long long p = std::strtoll(env, nullptr, 10);
    if (p >= 0) resolved.period = p;
    return resolved;
  }
  const char* cursor = env;
  while (*cursor != '\0') {
    if (std::strncmp(cursor, "period=", 7) == 0) {
      const long long p = std::strtoll(cursor + 7, nullptr, 10);
      if (p >= 0) resolved.period = p;
    } else if (std::strncmp(cursor, "seed=", 5) == 0) {
      resolved.seed = std::strtoull(cursor + 5, nullptr, 10);
    }
    const char* comma = std::strchr(cursor, ',');
    if (comma == nullptr) break;
    cursor = comma + 1;
  }
  return resolved;
}

}  // namespace

ChaosEngine::ChaosEngine(std::unique_ptr<SelectEngine> inner,
                         const ChaosOptions& options)
    : inner_(std::move(inner)), options_(ResolveOptions(options)) {}

void ChaosEngine::MaybeArm() {
  const int64_t call = calls_++;
  if (options_.period <= 0) return;
  if ((call + 1) % options_.period != 0) return;
  const uint64_t crossing =
      1 + Mix(options_.seed ^ static_cast<uint64_t>(call)) % kMaxCrossing;
  fault::ArmCountdown(static_cast<int64_t>(crossing));
}

void ChaosEngine::NoteFault(const char* point) {
  fault::Disarm();
  ++faults_injected_;
  last_fault_point_ = point;
}

Status ChaosEngine::Select(Value low, Value high, QueryResult* result) {
  MaybeArm();
  try {
    const Status status = inner_->Select(low, high, result);
    fault::Disarm();  // scheduled injection whose countdown never fired
    return status;
  } catch (const fault::InjectedFault& f) {
    NoteFault(f.point());
  }
  // Retry once, faults disarmed. The aborted attempt may have appended
  // partial segments; the retry starts from a clean result.
  ++retries_;
  *result = QueryResult{};
  return inner_->Select(low, high, result);
}

Status ChaosEngine::Execute(const Query& query, QueryOutput* output) {
  MaybeArm();
  try {
    const Status status = inner_->Execute(query, output);
    fault::Disarm();
    return status;
  } catch (const fault::InjectedFault& f) {
    NoteFault(f.point());
  }
  ++retries_;
  return inner_->Execute(query, output);
}

}  // namespace scrack
