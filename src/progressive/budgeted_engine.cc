#include "progressive/budgeted_engine.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

namespace scrack {

namespace {

// SCRACK_SWAP_BUDGET (env) > config.swap_budget, mirroring the
// SCRACK_PARALLEL_THRESHOLD resolution order. Read once per process.
int64_t ResolveSwapBudget(const EngineConfig& config) {
  static const int64_t env_budget = [] {
    const char* env = std::getenv("SCRACK_SWAP_BUDGET");
    if (env != nullptr && *env != '\0') {
      const long long v = std::strtoll(env, nullptr, 10);
      if (v > 0) return static_cast<int64_t>(v);
    }
    return int64_t{0};
  }();
  if (env_budget > 0) return env_budget;
  return config.swap_budget > 0 ? config.swap_budget : 0;
}

// Clamps the small-piece cutoff to the budget, so a backlog head piece at
// the cutoff can always be finished with one query's allowance (otherwise
// a budget below the cutoff would starve the drain forever).
EngineConfig EffectiveConfig(const EngineConfig& config) {
  EngineConfig effective = config;
  effective.swap_budget = ResolveSwapBudget(config);
  if (effective.swap_budget > 0) {
    const Index cutoff = effective.budget_small_piece_values > 0
                             ? effective.budget_small_piece_values
                             : effective.crack_threshold_values;
    effective.budget_small_piece_values =
        std::min<Index>(cutoff, effective.swap_budget);
  }
  return effective;
}

}  // namespace

BudgetedEngine::BudgetedEngine(const Column* base, const EngineConfig& config,
                               std::string inner_desc)
    : column_(base, EffectiveConfig(config)),
      inner_desc_(std::move(inner_desc)) {
  budget_ = column_.config().swap_budget;
  if (budget_ > 0) {
    // The enforced per-query ceiling, for the auditor's budget law: the
    // budget itself plus one small-piece overdraw per query bound.
    stats_.swap_budget = budget_ + 2 * column_.budget_small_piece_values();
  }
}

std::string BudgetedEngine::name() const {
  const std::string b = budget_ > 0 ? std::to_string(budget_) : "inf";
  return "prog(" + b + "," + inner_desc_ + ")";
}

int64_t BudgetedEngine::Allowance() const {
  if (budget_ <= 0) return std::numeric_limits<int64_t>::max();
  return budget_ - (stats_.swaps - swaps_mark_);
}

Status BudgetedEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  int64_t allowance = Allowance();
  CrackerColumn::DeferredBound low_deferred;
  CrackerColumn::DeferredBound high_deferred;
  SCRACK_RETURN_NOT_OK(column_.BudgetedSelect(
      low, high, &allowance, &low_deferred, &high_deferred, result, &stats_));
  FinishQuery(low_deferred, high_deferred);
  DrainBacklog(&allowance);
  swaps_mark_ = stats_.swaps;
  stats_.deferred_swaps = gauge_;
  ++stats_.queries;
  return Status::OK();
}

Status BudgetedEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  int64_t allowance = Allowance();
  CrackerColumn::DeferredBound low_deferred;
  CrackerColumn::DeferredBound high_deferred;
  SCRACK_RETURN_NOT_OK(column_.BudgetedAggregate(
      query, &allowance, &low_deferred, &high_deferred, output, &stats_));
  FinishQuery(low_deferred, high_deferred);
  DrainBacklog(&allowance);
  swaps_mark_ = stats_.swaps;
  stats_.deferred_swaps = gauge_;
  ++stats_.aggregates_pushed;
  ++stats_.queries;
  return Status::OK();
}

void BudgetedEngine::FinishQuery(const CrackerColumn::DeferredBound& low,
                                 const CrackerColumn::DeferredBound& high) {
  if (low.deferred) Enqueue(low.value, low.remaining);
  if (high.deferred) Enqueue(high.value, high.remaining);
  if (low.deferred || high.deferred) ++stats_.budget_exhausted;
}

void BudgetedEngine::Enqueue(Value v, Index remaining) {
  if (!members_.insert(v).second) return;  // already queued
  backlog_.push_back(BacklogEntry{v, remaining});
  gauge_ += remaining;
}

void BudgetedEngine::DrainBacklog(int64_t* allowance) {
  while (!backlog_.empty() && *allowance > 0) {
    BacklogEntry& entry = backlog_.front();
    const CrackerColumn::BudgetedCrackOutcome outcome =
        column_.AdvanceBudgetedCrack(entry.value, /*eager_small=*/false,
                                     allowance, &stats_);
    if (outcome.resolved) {
      gauge_ -= entry.charged;
      members_.erase(entry.value);
      backlog_.pop_front();
      continue;
    }
    // Head of line still unfinished: re-charge the gauge with the fresh
    // remaining span (it shrinks with partition progress, and can grow
    // back when an update merge abandoned in-flight cursors) and stop —
    // either the allowance is spent, or the head is a small piece waiting
    // for a query with enough leftover budget to finish it whole.
    gauge_ += outcome.remaining - entry.charged;
    entry.charged = outcome.remaining;
    break;
  }
}

Status BudgetedEngine::DrainDeferred(int64_t max_rounds) {
  for (int64_t round = 0; round < max_rounds && !backlog_.empty(); ++round) {
    // Each round grants one full query budget, regardless of the previous
    // query's leftovers.
    int64_t allowance =
        budget_ > 0 ? budget_ : std::numeric_limits<int64_t>::max();
    DrainBacklog(&allowance);
  }
  swaps_mark_ = stats_.swaps;
  stats_.deferred_swaps = gauge_;
  return Status::OK();
}

Status BudgetedEngine::Validate() const {
  SCRACK_RETURN_NOT_OK(column_.Validate());
  if (backlog_.empty() && gauge_ != 0) {
    return Status::Internal(
        "budgeted engine: empty backlog with nonzero deferred_swaps gauge");
  }
  if (gauge_ < 0) {
    return Status::Internal("budgeted engine: negative deferred_swaps gauge");
  }
  return Status::OK();
}

}  // namespace scrack
