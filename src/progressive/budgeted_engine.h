// BudgetedEngine: original cracking under a per-query swap budget
// (prog(B,<inner>) in the engine factory).
//
// The paper makes cracking robust against adversarial *workloads*; this
// engine pushes the same idea to *latency*: no single query may spend more
// than B element exchanges on reorganization, no matter how cold the
// column is. A query first advances budgeted partitions toward cracks at
// its own bounds (resumable PartialPartition state carried in the piece
// metadata, small pieces finished eagerly); whatever the budget could not
// crack is answered by the vectorized scan/fold kernels over the uncracked
// piece — the answer is the same multiset of tuples unbudgeted cracking
// returns, only the reorganization schedule moves. Deferred bound values
// go into a FIFO backlog that later queries drain with their leftover
// budget, so the index converges to the *identical* final piece layout
// plain cracking reaches (crack positions are rank-determined: pos(v) =
// #elements < v, independent of the order or granularity of the partition
// work that got there).
//
// Budget law: per-query swaps <= B + 2 * small-piece cutoff (each of the
// current query's two bounds may overdraw once to finish a cache-resident
// piece). The enforced ceiling is published in EngineStats::swap_budget so
// audit(prog(B,...)) checks it after every call. The cutoff is clamped to
// B, so the backlog can always make progress with one query's allowance.
//
// Composition: a leaf engine owning its column, so epoch / sharded / audit
// / threadsafe wrap it like any other engine. Note that under
// epoch(prog(...)) the backlog drains only on queries that escalate to the
// writer path — shared reads never touch the inner engine.
#pragma once

#include <deque>
#include <set>
#include <string>

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

class BudgetedEngine : public SelectEngine {
 public:
  /// `inner_desc` is the composed-over spec ("crack", "crack-p8"), echoed
  /// in name(); cracking parallelism comes from config.parallel_threads as
  /// usual. The effective budget resolves SCRACK_SWAP_BUDGET (env) over
  /// config.swap_budget; <= 0 means unlimited.
  BudgetedEngine(const Column* base, const EngineConfig& config,
                 std::string inner_desc);

  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown under the budget: settled middle from the cracked
  /// region folds, unresolved end pieces from the range-filtered fold
  /// kernels, partials merged. kMaterialize routes through Select.
  Status Execute(const Query& query, QueryOutput* output) override;

  std::string name() const override;

  Status StageInsert(Value v) override {
    column_.StageInsert(v);
    return Status::OK();
  }
  Status StageDelete(Value v) override {
    column_.StageDelete(v);
    return Status::OK();
  }

  /// Column invariants plus the budget bookkeeping's own law: an empty
  /// backlog must mean a zero deferred_swaps gauge.
  Status Validate() const override;

  const CrackerColumn* audit_column() const override { return &column_; }

  /// Per-query swap budget in effect (0 = unlimited).
  int64_t budget() const { return budget_; }

  /// True once every deferred bound value has been cracked — from here on
  /// the engine behaves exactly like plain cracking on the same column.
  bool Converged() const { return backlog_.empty(); }

  /// Deferred bound values awaiting lazy completion.
  int64_t backlog_size() const { return static_cast<int64_t>(backlog_.size()); }

  /// Drains the backlog without answering queries: each round grants one
  /// query's budget (unlimited engines drain in one round). Stops after
  /// `max_rounds` rounds if the backlog still holds work — check
  /// Converged(). Used by tests and the robustness repro figure to reach
  /// the converged layout deterministically.
  Status DrainDeferred(int64_t max_rounds);

  /// Test access to the underlying cracked column.
  CrackerColumn& column() { return column_; }

 protected:
  Status PrepareBatch(const std::vector<Query>& queries) override {
    return column_.MergePendingInBatchHull(queries, &stats_);
  }

 private:
  struct BacklogEntry {
    Value value;
    Index charged;  ///< span last charged into the deferred_swaps gauge
  };

  /// The current query's swap allowance: the budget minus swaps already
  /// spent since the last completed query. Anchoring the allowance to the
  /// cumulative swap counter (which survives an exception unwind) keeps
  /// the per-query ceiling intact when chaos(...) retries an aborted
  /// attempt — the retry only gets what the abort left unspent.
  /// Effectively unlimited when budget_ == 0.
  int64_t Allowance() const;

  /// Enqueues a bound the budget could not crack (no-op if already queued).
  void Enqueue(Value v, Index remaining);

  /// Spends leftover allowance finishing deferred cracks, oldest first.
  void DrainBacklog(int64_t* allowance);

  /// Post-query bookkeeping shared by Select and Execute.
  void FinishQuery(const CrackerColumn::DeferredBound& low,
                   const CrackerColumn::DeferredBound& high);

  CrackerColumn column_;
  std::string inner_desc_;
  int64_t budget_ = 0;  // per-query swaps; 0 = unlimited
  std::deque<BacklogEntry> backlog_;
  std::set<Value> members_;  // values present in backlog_
  int64_t gauge_ = 0;        // sum of backlog charges = stats_.deferred_swaps
  int64_t swaps_mark_ = 0;   // stats_.swaps at the last completed query
};

}  // namespace scrack
