// Query workload generators — every pattern of paper Fig. 7.
//
// Each workload is a deterministic (seeded) sequence of half-open range
// queries [low, high) over the value domain [0, N). The formulas follow the
// paper's workload table verbatim; where the paper leaves a parameter free
// (J = jump factor, W = initial width) WorkloadParams picks a default that
// spans the domain across the Q queries, which is what the paper's plots
// show. Bounds are clamped into the domain and to low < high.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace scrack {

/// One range select.
struct RangeQuery {
  Value low;
  Value high;
};

/// All workload patterns of Fig. 7, their reversed variants, the Mixed
/// workload of Fig. 17, and the synthetic SkyServer trace of Fig. 16.
enum class WorkloadKind {
  kRandom,
  kSkew,
  kSeqRandom,
  kSeqZoomIn,
  kPeriodic,
  kZoomIn,
  kSequential,
  kZoomOutAlt,
  kZoomInAlt,
  kSeqReverse,      // Sequential run backwards
  kZoomOut,         // ZoomIn run backwards
  kSeqZoomOut,      // SeqZoomIn run backwards
  kSkewZoomOutAlt,  // ZoomOutAlt with M = N*9/10
  kMixed,           // switches workload every 1000 queries
  kSkyServer,       // synthetic SkyServer trace (see skyserver.h)
};

/// Parameters shared by all generators. Zero means "derive a default from
/// N, Q and S" for the free parameters.
struct WorkloadParams {
  Index n = 0;              ///< value domain is [0, n)
  QueryId num_queries = 0;  ///< Q
  Value selectivity = 10;   ///< S: width of fixed-width queries, in values
  Value jump = 0;           ///< J (0 = auto)
  Value width = 0;          ///< W (0 = auto)
  uint64_t seed = 7;
};

/// Generates the full query sequence for `kind`.
std::vector<RangeQuery> MakeWorkload(WorkloadKind kind,
                                     const WorkloadParams& params);

/// Display name, e.g. "Sequential".
std::string WorkloadName(WorkloadKind kind);

/// Parses a name (case-insensitive, as printed by WorkloadName). Returns
/// false on unknown names.
bool ParseWorkloadKind(const std::string& name, WorkloadKind* kind);

/// The 13 synthetic patterns of Fig. 17's table, in the paper's row order
/// (Periodic ... SkewZoomOutAlt). Excludes Mixed and SkyServer.
std::vector<WorkloadKind> Fig17SyntheticKinds();

}  // namespace scrack
