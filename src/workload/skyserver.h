// Synthetic SkyServer workload (substitute for the real trace — DESIGN.md §3).
//
// The paper's Fig. 16(b) plots 160k logged selection predicates on the
// "right ascension" attribute of SkyServer's Photoobjall table. The visible
// structure: users/institutions focus ("scan one part of the sky") on a
// narrow region of the domain for a long stretch of queries, drifting
// slowly within it, then jump to another region, with occasional revisits
// of earlier regions. That dwell-drift-jump structure — not the absolute
// coordinates — is what defeats original cracking: each dwell leaves large
// unindexed pieces that a later phase crashes into.
//
// MakeSkyServerWorkload reproduces exactly that structure, deterministically
// from a seed.
#pragma once

#include <vector>

#include "workload/workload.h"

namespace scrack {

/// Generates params.num_queries queries over [0, params.n) with the
/// SkyServer dwell-drift-jump access pattern.
std::vector<RangeQuery> MakeSkyServerWorkload(const WorkloadParams& params);

}  // namespace scrack
