#include "workload/workload.h"

#include <algorithm>
#include <cctype>

#include "util/rng.h"
#include "workload/skyserver.h"

namespace scrack {

namespace {

// Clamps a raw [low, high) pair into the domain [0, n) with low < high.
RangeQuery Clamp(Value low, Value high, Index n) {
  low = std::max<Value>(0, std::min<Value>(low, n - 1));
  high = std::max<Value>(low + 1, std::min<Value>(high, n));
  return RangeQuery{low, high};
}

// Non-negative modulus guard: R % bound with bound forced >= 1.
Value Mod(uint64_t r, Value bound) {
  bound = std::max<Value>(1, bound);
  return static_cast<Value>(r % static_cast<uint64_t>(bound));
}

struct Derived {
  Index n;
  QueryId q;
  Value s;  // selectivity (query width)
  Value j;  // jump
  Value w;  // initial width
};

Derived DeriveParams(WorkloadKind kind, const WorkloadParams& params) {
  Derived d;
  d.n = params.n;
  d.q = std::max<QueryId>(1, params.num_queries);
  d.s = std::max<Value>(1, params.selectivity);
  SCRACK_CHECK(d.n >= 2);
  // Defaults are chosen so the pattern spans the domain over the Q queries,
  // matching the shapes drawn in Fig. 7.
  switch (kind) {
    case WorkloadKind::kSequential:
    case WorkloadKind::kSeqReverse:
      d.j = params.jump > 0 ? params.jump
                            : std::max<Value>(1, (d.n - d.s) / d.q);
      break;
    case WorkloadKind::kSeqRandom:
      d.j = params.jump > 0 ? params.jump
                            : std::max<Value>(1, (d.n - 1) / d.q);
      break;
    case WorkloadKind::kPeriodic:
      // ~10 sweeps across the domain.
      d.j = params.jump > 0
                ? params.jump
                : std::max<Value>(1, 10 * (d.n - d.s) / d.q);
      break;
    case WorkloadKind::kZoomIn:
    case WorkloadKind::kZoomOut:
      d.w = params.width > 0 ? params.width : d.n;
      d.j = params.jump > 0
                ? params.jump
                : std::max<Value>(1, (d.w / 2 - d.s) / d.q);
      break;
    case WorkloadKind::kSeqZoomIn:
    case WorkloadKind::kSeqZoomOut: {
      const QueryId windows = std::max<QueryId>(1, d.q / 1000);
      d.w = params.width > 0 ? params.width
                             : std::max<Value>(2 * d.s, d.n / windows);
      d.j = params.jump > 0 ? params.jump
                            : std::max<Value>(1, d.w / (2 * 1000));
      break;
    }
    case WorkloadKind::kZoomOutAlt:
    case WorkloadKind::kSkewZoomOutAlt:
      d.j = params.jump > 0 ? params.jump
                            : std::max<Value>(1, (d.n / 2 - d.s) / d.q);
      break;
    case WorkloadKind::kZoomInAlt:
      d.j = params.jump > 0
                ? params.jump
                : std::max<Value>(1, (d.n - d.s) / (2 * d.q));
      break;
    default:
      d.j = std::max<Value>(1, params.jump);
      break;
  }
  if (d.w == 0) d.w = params.width > 0 ? params.width : d.n;
  return d;
}

std::vector<RangeQuery> GenerateBase(WorkloadKind kind,
                                     const WorkloadParams& params) {
  const Derived d = DeriveParams(kind, params);
  Rng rng(params.seed);
  std::vector<RangeQuery> queries;
  queries.reserve(static_cast<size_t>(d.q));
  for (QueryId i = 0; i < d.q; ++i) {
    Value a = 0;
    Value b = 0;
    switch (kind) {
      case WorkloadKind::kRandom:
        // [a, a+S), a = R%(N-S)
        a = Mod(rng.Next64(), d.n - d.s);
        b = a + d.s;
        break;
      case WorkloadKind::kSkew:
        // First 80% of the queries hit the lower 80% of the domain; the
        // remainder hit the top 20%.
        if (i < d.q * 8 / 10) {
          a = Mod(rng.Next64(), d.n * 8 / 10 - d.s);
        } else {
          a = d.n * 8 / 10 + Mod(rng.Next64(), d.n * 2 / 10 - d.s);
        }
        b = a + d.s;
        break;
      case WorkloadKind::kSeqRandom:
        // [i*J, i*J + R%(N - i*J))
        a = i * d.j;
        b = a + 1 + Mod(rng.Next64(), d.n - a - 1);
        break;
      case WorkloadKind::kSeqZoomIn: {
        // [L+K, L+W-K), L = (i div 1000)*W, K = (i%1000)*J
        const Value l = static_cast<Value>(i / 1000) * d.w;
        const Value k = static_cast<Value>(i % 1000) * d.j;
        a = l + std::min(k, d.w / 2 - 1);
        b = l + d.w - std::min(k, d.w / 2 - 1);
        break;
      }
      case WorkloadKind::kPeriodic:
        // [a, a+S), a = (i*J)%(N-S)
        a = Mod(static_cast<uint64_t>(i * d.j), d.n - d.s);
        b = a + d.s;
        break;
      case WorkloadKind::kZoomIn:
        // [N/2 - W/2 + i*J, N/2 + W/2 - i*J)
        a = d.n / 2 - d.w / 2 + i * d.j;
        b = d.n / 2 + d.w / 2 - i * d.j;
        break;
      case WorkloadKind::kSequential:
        // [a, a+S), a = i*J
        a = i * d.j;
        b = a + d.s;
        break;
      case WorkloadKind::kZoomOutAlt:
      case WorkloadKind::kSkewZoomOutAlt: {
        // [a, a+S), a = x*i*J + M, x = (-1)^i
        const Value m = kind == WorkloadKind::kZoomOutAlt
                            ? d.n / 2
                            : d.n * 9 / 10;
        const Value x = (i % 2 == 0) ? 1 : -1;
        a = x * i * d.j + m;
        b = a + d.s;
        break;
      }
      case WorkloadKind::kZoomInAlt: {
        // [a, a+S), a = x*i*J + (N-S)*(1-x)/2, x = (-1)^i
        const Value x = (i % 2 == 0) ? 1 : -1;
        a = x * i * d.j + (d.n - d.s) * (1 - x) / 2;
        b = a + d.s;
        break;
      }
      default:
        SCRACK_CHECK(false);  // reversed/composite kinds handled by caller
    }
    queries.push_back(Clamp(a, b, d.n));
  }
  return queries;
}

}  // namespace

std::vector<RangeQuery> MakeWorkload(WorkloadKind kind,
                                     const WorkloadParams& params) {
  SCRACK_CHECK(params.n >= 2);
  SCRACK_CHECK(params.num_queries >= 1);
  switch (kind) {
    case WorkloadKind::kSeqReverse: {
      auto queries = GenerateBase(WorkloadKind::kSequential, params);
      std::reverse(queries.begin(), queries.end());
      return queries;
    }
    case WorkloadKind::kZoomOut: {
      auto queries = GenerateBase(WorkloadKind::kZoomIn, params);
      std::reverse(queries.begin(), queries.end());
      return queries;
    }
    case WorkloadKind::kSeqZoomOut: {
      auto queries = GenerateBase(WorkloadKind::kSeqZoomIn, params);
      std::reverse(queries.begin(), queries.end());
      return queries;
    }
    case WorkloadKind::kMixed: {
      // Fig. 17: "randomly switches between each workload in every 1000
      // queries" — at the paper's Q=1e4 that is 10 switches, so scale the
      // block length down with Q to preserve the switching density.
      const QueryId block_target = std::max<QueryId>(
          1, std::min<QueryId>(1000, params.num_queries / 10));
      const std::vector<WorkloadKind> kinds = Fig17SyntheticKinds();
      Rng rng(params.seed ^ 0x9E3779B97F4A7C15ULL);
      std::vector<RangeQuery> queries;
      queries.reserve(static_cast<size_t>(params.num_queries));
      QueryId produced = 0;
      int block = 0;
      while (produced < params.num_queries) {
        const QueryId block_len =
            std::min<QueryId>(block_target, params.num_queries - produced);
        WorkloadKind block_kind =
            kinds[rng.Uniform(static_cast<uint64_t>(kinds.size()))];
        WorkloadParams sub = params;
        sub.num_queries = block_len;
        sub.seed = params.seed + 0x1000 + static_cast<uint64_t>(block);
        // Blocks use the *standalone* workloads' parameters (jump/width
        // derived for the full sequence length, as in the paper's Fig. 17
        // Mixed): a block therefore dwells on part of its pattern instead
        // of compressing the whole sweep into one block — which is exactly
        // what leaves large unindexed pieces for later blocks to hit.
        const WorkloadKind derive_kind =
            block_kind == WorkloadKind::kSeqReverse ? WorkloadKind::kSequential
            : block_kind == WorkloadKind::kZoomOut  ? WorkloadKind::kZoomIn
            : block_kind == WorkloadKind::kSeqZoomOut
                ? WorkloadKind::kSeqZoomIn
                : block_kind;
        const Derived derived = DeriveParams(derive_kind, params);
        if (sub.jump == 0) sub.jump = derived.j;
        if (sub.width == 0) sub.width = derived.w;
        auto sub_queries = MakeWorkload(block_kind, sub);
        queries.insert(queries.end(), sub_queries.begin(), sub_queries.end());
        produced += block_len;
        ++block;
      }
      return queries;
    }
    case WorkloadKind::kSkyServer:
      return MakeSkyServerWorkload(params);
    default:
      return GenerateBase(kind, params);
  }
}

std::string WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kRandom: return "Random";
    case WorkloadKind::kSkew: return "Skew";
    case WorkloadKind::kSeqRandom: return "SeqRandom";
    case WorkloadKind::kSeqZoomIn: return "SeqZoomIn";
    case WorkloadKind::kPeriodic: return "Periodic";
    case WorkloadKind::kZoomIn: return "ZoomIn";
    case WorkloadKind::kSequential: return "Sequential";
    case WorkloadKind::kZoomOutAlt: return "ZoomOutAlt";
    case WorkloadKind::kZoomInAlt: return "ZoomInAlt";
    case WorkloadKind::kSeqReverse: return "SeqReverse";
    case WorkloadKind::kZoomOut: return "ZoomOut";
    case WorkloadKind::kSeqZoomOut: return "SeqZoomOut";
    case WorkloadKind::kSkewZoomOutAlt: return "SkewZoomOutAlt";
    case WorkloadKind::kMixed: return "Mixed";
    case WorkloadKind::kSkyServer: return "SkyServer";
  }
  return "Unknown";
}

bool ParseWorkloadKind(const std::string& name, WorkloadKind* kind) {
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    return s;
  };
  const std::string needle = lower(name);
  for (WorkloadKind k : {
           WorkloadKind::kRandom, WorkloadKind::kSkew,
           WorkloadKind::kSeqRandom, WorkloadKind::kSeqZoomIn,
           WorkloadKind::kPeriodic, WorkloadKind::kZoomIn,
           WorkloadKind::kSequential, WorkloadKind::kZoomOutAlt,
           WorkloadKind::kZoomInAlt, WorkloadKind::kSeqReverse,
           WorkloadKind::kZoomOut, WorkloadKind::kSeqZoomOut,
           WorkloadKind::kSkewZoomOutAlt, WorkloadKind::kMixed,
           WorkloadKind::kSkyServer,
       }) {
    if (lower(WorkloadName(k)) == needle) {
      *kind = k;
      return true;
    }
  }
  return false;
}

std::vector<WorkloadKind> Fig17SyntheticKinds() {
  return {
      WorkloadKind::kPeriodic,   WorkloadKind::kZoomOut,
      WorkloadKind::kZoomIn,     WorkloadKind::kZoomInAlt,
      WorkloadKind::kRandom,     WorkloadKind::kSkew,
      WorkloadKind::kSeqReverse, WorkloadKind::kSeqZoomIn,
      WorkloadKind::kSeqRandom,  WorkloadKind::kSequential,
      WorkloadKind::kSeqZoomOut, WorkloadKind::kZoomOutAlt,
      WorkloadKind::kSkewZoomOutAlt,
  };
}

}  // namespace scrack
