#include "workload/skyserver.h"

#include <algorithm>

#include "util/rng.h"

namespace scrack {

std::vector<RangeQuery> MakeSkyServerWorkload(const WorkloadParams& params) {
  SCRACK_CHECK(params.n >= 2);
  const Index n = params.n;
  const QueryId q = params.num_queries;
  const Value s = std::max<Value>(1, params.selectivity);
  Rng rng(params.seed ^ 0x5CA1AB1E5CA1AB1EULL);

  std::vector<RangeQuery> queries;
  queries.reserve(static_cast<size_t>(q));
  std::vector<Value> visited_regions;

  QueryId produced = 0;
  while (produced < q) {
    // Phase length: a dwell of roughly Q/40 .. Q/8 queries, so a full run
    // has on the order of tens of phases, like the logged trace.
    const QueryId min_phase = std::max<QueryId>(16, q / 40);
    const QueryId max_phase = std::max<QueryId>(min_phase + 1, q / 8);
    QueryId phase_len = static_cast<QueryId>(
        min_phase + rng.Uniform(static_cast<uint64_t>(max_phase - min_phase)));
    phase_len = std::min(phase_len, q - produced);

    // Region: 1/4 of phases revisit an earlier region (telescopes return to
    // interesting sky areas); otherwise a fresh random region.
    Value region_center;
    if (!visited_regions.empty() && rng.Coin(0.25)) {
      region_center = visited_regions[rng.Uniform(
          static_cast<uint64_t>(visited_regions.size()))];
    } else {
      region_center = static_cast<Value>(rng.Uniform(
          static_cast<uint64_t>(n)));
      visited_regions.push_back(region_center);
    }

    // Region width ~ 2% of the domain; the phase drifts across it.
    const Value region_width = std::max<Value>(4 * s, n / 50);
    const Value drift_start = region_center - region_width / 2;
    const bool forward = rng.Coin(0.5);

    for (QueryId t = 0; t < phase_len; ++t) {
      const double progress =
          static_cast<double>(t) / static_cast<double>(phase_len);
      const double where = forward ? progress : 1.0 - progress;
      Value low = drift_start +
                  static_cast<Value>(where * static_cast<double>(region_width));
      // Small jitter: consecutive queries are near but not identical.
      const Value jitter_span = std::max<Value>(1, region_width / 64);
      low += static_cast<Value>(rng.Uniform(
                 static_cast<uint64_t>(2 * jitter_span))) -
             jitter_span;
      low = std::max<Value>(0, std::min<Value>(low, n - 1));
      const Value high = std::max<Value>(low + 1, std::min<Value>(low + s, n));
      queries.push_back(RangeQuery{low, high});
      ++produced;
    }
  }
  return queries;
}

}  // namespace scrack
