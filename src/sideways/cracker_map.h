// CrackerMap: a two-attribute cracker map for sideways cracking.
//
// Paper §2: cracking "is propagated across multiple columns on demand,
// depending on query needs with partial sideways cracking [18], whereby
// pieces of cracker columns are dynamically created and deleted based on
// storage restrictions". A cracker map for (head=A, tail=B) stores aligned
// copies of both attributes and cracks them *together* on A, so a select on
// A can return the matching B values as a contiguous zero-copy view —
// tuple reconstruction without row ids.
//
// The map supports the same end-piece policies as single-column cracking:
// original (crack on bounds), DD1R (one random crack first — stochastic
// robustness extends to maps unchanged), and MDD1R (random crack +
// materialize tail values of end pieces).
#pragma once

#include "cracking/engine.h"
#include "index/cracker_index.h"
#include "sideways/kernel_pairs.h"
#include "storage/column.h"
#include "storage/query_result.h"
#include "util/rng.h"

namespace scrack {

class CrackerMap {
 public:
  /// End-piece policy for map cracking.
  enum class Mode { kCrack, kDd1r, kMdd1r };

  /// `head` and `tail` must be equally long and outlive the map. Copies
  /// lazily on first Select (the first projection pays initialization, as
  /// in sideways cracking).
  CrackerMap(const Column* head, const Column* tail,
             const EngineConfig& config, Mode mode);

  /// Appends the tail values of every tuple with low <= head < high to
  /// `result` (views where contiguous, owned buffers where materialized).
  Status Select(Value low, Value high, QueryResult* result);

  /// Full invariant check (piece bounds on the head array + alignment).
  Status Validate() const;

  const EngineStats& stats() const { return stats_; }
  Mode mode() const { return mode_; }
  bool initialized() const { return initialized_; }
  Index size() const { return static_cast<Index>(head_.size()); }

  /// Approximate bytes held by the map (for storage-budget eviction).
  size_t MemoryBytes() const {
    return (head_.capacity() + tail_.capacity()) * sizeof(Value);
  }

 private:
  void EnsureInitialized();

  // Ensures a crack exists at bound v (policy-dependent); returns its
  // position. For kMdd1r the caller uses SplitMatPiece instead.
  Index CrackBound(Value v);

  // MDD1R-style handling of the piece containing v.
  void SplitMatPiece(const Piece& piece, Value qlo, Value qhi,
                     QueryResult* result);

  const Column* base_head_;
  const Column* base_tail_;
  EngineConfig config_;
  Mode mode_;
  bool initialized_ = false;
  std::vector<Value> head_;
  std::vector<Value> tail_;
  CrackerIndex index_;
  Rng rng_;
  Value min_value_ = 0;
  Value max_value_ = -1;
  EngineStats stats_;
};

}  // namespace scrack
