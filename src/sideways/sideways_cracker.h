// SidewaysCracker: on-demand cracker maps over a table, with a storage
// budget.
//
// For a table with selection attribute A and projection attributes
// B, C, ..., a SidewaysCracker materializes one CrackerMap per projected
// attribute the first time a query asks for it ("dynamically created ...
// based on query needs", paper §2) and evicts least-recently-used maps
// when the configured storage budget is exceeded ("... and deleted based
// on storage restrictions"). Evicted maps are rebuilt — and re-crack —
// from the base table on the next touch.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>

#include "sideways/cracker_map.h"
#include "storage/table.h"

namespace scrack {

class SidewaysCracker {
 public:
  /// `table` must outlive the cracker. `head_column` is the selection
  /// attribute. `budget_bytes` caps the total memory of live maps
  /// (0 = unlimited).
  SidewaysCracker(const Table* table, std::string head_column,
                  const EngineConfig& config, CrackerMap::Mode mode,
                  size_t budget_bytes = 0);

  /// SELECT tail_column WHERE low <= head < high.
  Status Project(const std::string& tail_column, Value low, Value high,
                 QueryResult* result);

  /// Number of currently materialized maps.
  size_t num_live_maps() const { return maps_.size(); }

  /// Total maps ever created (rebuilds after eviction count again).
  int64_t maps_created() const { return maps_created_; }

  /// Per-map stats, nullptr if the map is not live.
  const EngineStats* MapStats(const std::string& tail_column) const;

  Status Validate() const;

 private:
  void EvictUntilWithinBudget();

  const Table* table_;
  std::string head_column_;
  EngineConfig config_;
  CrackerMap::Mode mode_;
  size_t budget_bytes_;
  int64_t maps_created_ = 0;

  // LRU: most recently used at the front.
  std::list<std::string> lru_;
  std::map<std::string, std::unique_ptr<CrackerMap>> maps_;
};

}  // namespace scrack
