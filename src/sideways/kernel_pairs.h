// Reorganization kernels over (head, tail) pairs — the cracker-map variant
// of the single-column kernels in cracking/kernel.h.
//
// Sideways cracking (Idreos et al., SIGMOD 2009, recapped in paper §2)
// propagates cracking across columns: for a query that selects on attribute
// A and projects attribute B, the system cracks a *map* of (A, B) pairs on
// A, keeping each tuple's B value glued to its A value through every swap.
// These kernels do exactly that: they partition the head array while
// applying identical swaps to the tail array.
#pragma once

#include <utility>
#include <vector>

#include "cracking/kernel.h"
#include "util/common.h"

namespace scrack {

/// Two-way crack of head[begin, end) around `pivot` (< pivot left), with
/// tail permuted identically. Returns the split position.
Index CrackInTwoPairs(Value* head, Value* tail, Index begin, Index end,
                      Value pivot, KernelCounters* counters);

/// Three-way crack for a range [lo, hi): layout becomes
/// [<lo | in-range | >=hi] in head with tail following. Returns (p1, p2).
std::pair<Index, Index> CrackInThreePairs(Value* head, Value* tail,
                                          Index begin, Index end, Value lo,
                                          Value hi, KernelCounters* counters);

/// MDD1R-style split of a map piece: partitions (head, tail) around `pivot`
/// while appending the *tail* values of qualifying tuples
/// (qlo <= head < qhi) to `out` in the same pass. Returns the split
/// position.
Index SplitAndMaterializePairs(Value* head, Value* tail, Index begin,
                               Index end, Value qlo, Value qhi, Value pivot,
                               std::vector<Value>* out,
                               KernelCounters* counters);

}  // namespace scrack
