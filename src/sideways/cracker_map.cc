#include "sideways/cracker_map.h"

#include <algorithm>
#include <limits>

namespace scrack {

CrackerMap::CrackerMap(const Column* head, const Column* tail,
                       const EngineConfig& config, Mode mode)
    : base_head_(head),
      base_tail_(tail),
      config_(config),
      mode_(mode),
      index_(0),
      rng_(config.seed),
      min_value_(std::numeric_limits<Value>::max()),
      max_value_(std::numeric_limits<Value>::min()) {
  SCRACK_CHECK(base_head_ != nullptr && base_tail_ != nullptr);
  SCRACK_CHECK(base_head_->size() == base_tail_->size());
}

void CrackerMap::EnsureInitialized() {
  if (initialized_) return;
  const Index n = base_head_->size();
  head_.resize(static_cast<size_t>(n));
  tail_.resize(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const Value h = (*base_head_)[i];
    head_[static_cast<size_t>(i)] = h;
    tail_[static_cast<size_t>(i)] = (*base_tail_)[i];
    min_value_ = std::min(min_value_, h);
    max_value_ = std::max(max_value_, h);
  }
  index_ = CrackerIndex(n);
  initialized_ = true;
  stats_.tuples_touched += 2 * n;  // map creation copies both attributes
}

Index CrackerMap::CrackBound(Value v) {
  if (index_.HasCrack(v)) return index_.CrackPosition(v);
  if (v <= min_value_) return 0;
  if (v > max_value_) return size();
  Piece piece = index_.FindPiece(v);
  KernelCounters counters;
  if (mode_ == Mode::kDd1r &&
      piece.size() > config_.crack_threshold_values) {
    // One DD1R-style random crack before the query-driven one.
    const Index r = rng_.UniformIndex(piece.begin, piece.end - 1);
    const Value pivot = head_[static_cast<size_t>(r)];
    ++stats_.random_pivots;
    const Index split = CrackInTwoPairs(head_.data(), tail_.data(),
                                        piece.begin, piece.end, pivot,
                                        &counters);
    if (index_.AddCrack(pivot, split)) ++stats_.cracks;
    piece = index_.FindPiece(v);
  }
  const Index split = CrackInTwoPairs(head_.data(), tail_.data(), piece.begin,
                                      piece.end, v, &counters);
  stats_.tuples_touched += counters.touched;
  stats_.swaps += counters.swaps;
  if (index_.AddCrack(v, split)) ++stats_.cracks;
  return split;
}

void CrackerMap::SplitMatPiece(const Piece& piece, Value qlo, Value qhi,
                               QueryResult* result) {
  if (piece.size() == 0) return;
  const Index r = rng_.UniformIndex(piece.begin, piece.end - 1);
  const Value pivot = head_[static_cast<size_t>(r)];
  ++stats_.random_pivots;
  KernelCounters counters;
  std::vector<Value> out;
  const Index split =
      SplitAndMaterializePairs(head_.data(), tail_.data(), piece.begin,
                               piece.end, qlo, qhi, pivot, &out, &counters);
  stats_.tuples_touched += counters.touched;
  stats_.swaps += counters.swaps;
  if (index_.AddCrack(pivot, split)) ++stats_.cracks;
  stats_.materialized += static_cast<int64_t>(out.size());
  result->AddOwned(std::move(out));
}

Status CrackerMap::Select(Value low, Value high, QueryResult* result) {
  if (low > high) {
    return Status::InvalidArgument("select range has low > high");
  }
  ++stats_.queries;
  EnsureInitialized();
  if (size() == 0 || low >= high) return Status::OK();

  if (mode_ != Mode::kMdd1r) {
    const Index pos_low = CrackBound(low);
    const Index pos_high = CrackBound(high);
    if (pos_high > pos_low) {
      result->AddView(tail_.data() + pos_low, pos_high - pos_low);
    }
    return Status::OK();
  }

  // MDD1R over the map: materialize tail values of the end pieces, view
  // the middle.
  const bool low_exact = low <= min_value_ || index_.HasCrack(low);
  const bool high_exact = high > max_value_ || index_.HasCrack(high);
  if (!low_exact && !high_exact) {
    const Piece piece = index_.FindPiece(low);
    if (!piece.has_upper || high < piece.upper) {
      SplitMatPiece(piece, low, high, result);
      return Status::OK();
    }
  }
  Index view_begin = 0;
  if (low <= min_value_) {
    view_begin = 0;
  } else if (index_.HasCrack(low)) {
    view_begin = index_.CrackPosition(low);
  } else {
    const Piece piece = index_.FindPiece(low);
    SplitMatPiece(piece, low, high, result);
    view_begin = piece.end;
  }
  Index view_end = size();
  if (high > max_value_) {
    view_end = size();
  } else if (index_.HasCrack(high)) {
    view_end = index_.CrackPosition(high);
  } else {
    const Piece piece = index_.FindPiece(high);
    SplitMatPiece(piece, low, high, result);
    view_end = piece.begin;
  }
  if (view_end > view_begin) {
    result->AddView(tail_.data() + view_begin, view_end - view_begin);
  }
  return Status::OK();
}

Status CrackerMap::Validate() const {
  if (!initialized_) return Status::OK();
  SCRACK_RETURN_NOT_OK(index_.Validate(head_.data(), size()));
  if (head_.size() != tail_.size()) {
    return Status::Internal("cracker map arrays misaligned");
  }
  return Status::OK();
}

}  // namespace scrack
