#include "sideways/sideways_cracker.h"

#include <algorithm>

namespace scrack {

SidewaysCracker::SidewaysCracker(const Table* table, std::string head_column,
                                 const EngineConfig& config,
                                 CrackerMap::Mode mode, size_t budget_bytes)
    : table_(table),
      head_column_(std::move(head_column)),
      config_(config),
      mode_(mode),
      budget_bytes_(budget_bytes) {
  SCRACK_CHECK(table_ != nullptr);
}

Status SidewaysCracker::Project(const std::string& tail_column, Value low,
                                Value high, QueryResult* result) {
  const Column* head = table_->GetColumn(head_column_);
  if (head == nullptr) {
    return Status::NotFound("no head column " + head_column_);
  }
  const Column* tail = table_->GetColumn(tail_column);
  if (tail == nullptr) {
    return Status::NotFound("no tail column " + tail_column);
  }

  auto it = maps_.find(tail_column);
  if (it == maps_.end()) {
    auto map = std::make_unique<CrackerMap>(head, tail, config_, mode_);
    it = maps_.emplace(tail_column, std::move(map)).first;
    ++maps_created_;
  }
  // LRU touch.
  lru_.remove(tail_column);
  lru_.push_front(tail_column);

  SCRACK_RETURN_NOT_OK(it->second->Select(low, high, result));
  EvictUntilWithinBudget();
  return Status::OK();
}

void SidewaysCracker::EvictUntilWithinBudget() {
  if (budget_bytes_ == 0) return;
  auto total = [this]() {
    size_t bytes = 0;
    for (const auto& [name, map] : maps_) bytes += map->MemoryBytes();
    return bytes;
  };
  // Keep at least the most recently used map alive, whatever the budget —
  // otherwise the working map would thrash on every query.
  while (total() > budget_bytes_ && maps_.size() > 1) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    maps_.erase(victim);
  }
}

const EngineStats* SidewaysCracker::MapStats(
    const std::string& tail_column) const {
  auto it = maps_.find(tail_column);
  return it == maps_.end() ? nullptr : &it->second->stats();
}

Status SidewaysCracker::Validate() const {
  for (const auto& [name, map] : maps_) {
    SCRACK_RETURN_NOT_OK(map->Validate());
  }
  return Status::OK();
}

}  // namespace scrack
