#include "sideways/kernel_pairs.h"

#include <algorithm>

namespace scrack {

namespace {

inline void SwapPair(Value* head, Value* tail, Index a, Index b) {
  std::swap(head[a], head[b]);
  std::swap(tail[a], tail[b]);
}

}  // namespace

Index CrackInTwoPairs(Value* head, Value* tail, Index begin, Index end,
                      Value pivot, KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  Index lo = begin;
  Index hi = end - 1;
  int64_t swaps = 0;
  while (lo <= hi) {
    while (lo <= hi && head[lo] < pivot) ++lo;
    while (lo <= hi && head[hi] >= pivot) --hi;
    if (lo < hi) {
      SwapPair(head, tail, lo, hi);
      ++lo;
      --hi;
      ++swaps;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return lo;
}

std::pair<Index, Index> CrackInThreePairs(Value* head, Value* tail,
                                          Index begin, Index end, Value lo,
                                          Value hi,
                                          KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  SCRACK_DCHECK(lo <= hi);
  Index lt = begin;
  Index i = begin;
  Index gt = end;
  int64_t swaps = 0;
  while (i < gt) {
    if (head[i] < lo) {
      if (lt != i) {
        SwapPair(head, tail, lt, i);
        ++swaps;
      }
      ++lt;
      ++i;
    } else if (head[i] >= hi) {
      --gt;
      SwapPair(head, tail, i, gt);
      ++swaps;
    } else {
      ++i;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return {lt, gt};
}

Index SplitAndMaterializePairs(Value* head, Value* tail, Index begin,
                               Index end, Value qlo, Value qhi, Value pivot,
                               std::vector<Value>* out,
                               KernelCounters* counters) {
  SCRACK_DCHECK(begin <= end);
  Index left = begin;
  Index right = end - 1;
  int64_t swaps = 0;
  while (left <= right) {
    while (left <= right && head[left] < pivot) {
      if (qlo <= head[left] && head[left] < qhi) out->push_back(tail[left]);
      ++left;
    }
    while (left <= right && head[right] >= pivot) {
      if (qlo <= head[right] && head[right] < qhi) {
        out->push_back(tail[right]);
      }
      --right;
    }
    if (left < right) {
      SwapPair(head, tail, left, right);
      ++swaps;
    }
  }
  counters->touched += end - begin;
  counters->swaps += swaps;
  return left;
}

}  // namespace scrack
