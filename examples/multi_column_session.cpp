// Multi-column exploration with sideways cracking.
//
// The paper's select operator works on one attribute; real queries project
// other attributes of the qualifying tuples ("SELECT mag, dec WHERE
// ra BETWEEN ..."). Sideways cracking (paper §2, [18]) handles this with
// per-attribute cracker maps, created on demand and evicted under a storage
// budget. This example runs an exploratory astronomy session over a
// three-attribute table and shows maps being created, reused, and evicted.
//
//   ./multi_column_session
#include <cstdio>

#include "sideways/sideways_cracker.h"
#include "storage/table.h"
#include "util/rng.h"
#include "workload/skyserver.h"

using namespace scrack;

int main() {
  const Index n = 500'000;

  // Photoobjall-like table: right ascension + two payload attributes.
  Table table("photoobjall");
  if (!table.AddColumn("ra", Column::UniquePermutation(n, 1)).ok()) return 1;
  {
    const Column* ra = table.GetColumn("ra");
    std::vector<Value> mag(static_cast<size_t>(n));
    std::vector<Value> dec(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) {
      mag[static_cast<size_t>(i)] = ((*ra)[i] * 7) % 3000;   // "magnitude"
      dec[static_cast<size_t>(i)] = ((*ra)[i] * 13) % 1800;  // "declination"
    }
    if (!table.AddColumn("mag", Column(std::move(mag))).ok()) return 1;
    if (!table.AddColumn("dec", Column(std::move(dec))).ok()) return 1;
  }

  EngineConfig config = EngineConfig::Detected();
  config.seed = 11;
  // Budget deliberately tight: one live map at a time (each map is two
  // n-value arrays), so switching projected attributes evicts.
  SidewaysCracker cracker(&table, "ra", config, CrackerMap::Mode::kDd1r,
                          /*budget_bytes=*/2 * n * sizeof(Value) + 4096);

  WorkloadParams params;
  params.n = n;
  params.num_queries = 3000;
  params.selectivity = 50;
  params.seed = 99;
  const auto trace = MakeSkyServerWorkload(params);

  std::printf("%8s %6s %12s %10s %12s\n", "query#", "proj", "results",
              "live maps", "maps built");
  int64_t printed = 0;
  Rng pick(3);
  for (size_t i = 0; i < trace.size(); ++i) {
    // The analyst alternates between projecting magnitude and declination,
    // in stretches — which is what makes eviction policy matter.
    const char* projected = (i / 700) % 2 == 0 ? "mag" : "dec";
    QueryResult result;
    const Status status =
        cracker.Project(projected, trace[i].low, trace[i].high, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "projection failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (i % 300 == 0 && printed++ < 12) {
      std::printf("%8zu %6s %12lld %10zu %12lld\n", i, projected,
                  static_cast<long long>(result.count()),
                  cracker.num_live_maps(),
                  static_cast<long long>(cracker.maps_created()));
    }
  }
  std::printf(
      "\nSession done. %lld maps were built in total; the storage budget\n"
      "kept at most one alive, so each projection switch rebuilt (and\n"
      "re-cracked) its map — the trade-off partial sideways cracking\n"
      "manages. Validation: %s\n",
      static_cast<long long>(cracker.maps_created()),
      cracker.Validate().ToString().c_str());
  return 0;
}
