// Concurrent dashboard: many clients querying one adaptive column.
//
// A fleet of dashboard widgets refreshes in parallel against a shared
// AdaptiveStore column served by the sharded parallel engine
// (sharded(P,<inner>), see engine_factory.h). The column is
// range-partitioned into P shards, each cracking independently behind its
// own lock, so widgets probing different value ranges never contend —
// unlike the threadsafe:<inner> baseline, which serializes every query
// behind one mutex.
//
//   ./example_concurrent_dashboard
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness/adaptive_store.h"
#include "storage/column.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace scrack;

namespace {

// Each widget owns one value region and refreshes it repeatedly — the
// access locality a per-region dashboard panel produces.
void RunClients(AdaptiveStore* store, int clients, int refreshes, Index n,
                std::atomic<int64_t>* rows_served,
                std::atomic<int>* failures) {
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([=] {
      Rng rng(static_cast<uint64_t>(c) + 7);
      const Value region_lo = n / clients * c;
      const Value region_hi = n / clients * (c + 1);
      for (int i = 0; i < refreshes; ++i) {
        const Value lo = rng.UniformValue(region_lo, region_hi);
        const Value hi = lo + 2000 < region_hi ? lo + 2000 : region_hi;
        Query query;
        query.low = lo;
        query.high = hi;
        query.mode = OutputMode::kCount;
        QueryOutput result;
        if (!store->Execute("events", query, &result).ok()) {
          failures->fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        rows_served->fetch_add(result.count, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : fleet) t.join();
}

}  // namespace

int main() {
  const Index n = 2'000'000;
  const int kClients = 8;
  const int kRefreshes = 50;

  for (const char* spec : {"threadsafe:mdd1r", "sharded(8,mdd1r)"}) {
    AdaptiveStore store;
    const Status status = store.AddColumn(
        "events", Column::UniquePermutation(n, /*seed=*/1), spec);
    if (!status.ok()) {
      std::fprintf(stderr, "AddColumn failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }

    std::atomic<int64_t> rows_served{0};
    std::atomic<int> failures{0};
    Timer timer;
    RunClients(&store, kClients, kRefreshes, n, &rows_served, &failures);
    const double seconds = timer.ElapsedSeconds();
    if (failures.load() != 0) {
      std::fprintf(stderr, "%d queries failed under %s\n", failures.load(),
                   spec);
      return 1;
    }
    std::printf(
        "%-20s %d clients x %d refreshes: %8.1f queries/s, %lld rows "
        "served\n",
        spec, kClients, kRefreshes,
        kClients * kRefreshes / seconds,
        static_cast<long long>(rows_served.load()));
  }
  std::printf(
      "\nSame data, same workload: the sharded engine lets disjoint\n"
      "dashboard regions crack their shards in parallel instead of\n"
      "queueing on one lock.\n");
  return 0;
}
