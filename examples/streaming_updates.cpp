// Streaming updates under adaptive indexing (paper §5, Fig. 15 scenario).
//
// A telemetry-style column receives a continuous trickle of inserts and
// occasional deletes while analysts run range queries over the fresh data.
// Updates are staged and merged lazily (Ripple) by the queries that need
// them — the example prints how pending-update backlogs drain and that
// query answers always reflect every staged update.
//
//   ./streaming_updates
#include <cstdio>

#include "cracking/stochastic_engine.h"
#include "storage/column.h"
#include "util/rng.h"

using namespace scrack;

int main() {
  const Index n = 500'000;
  const Column base = Column::UniquePermutation(n, 9);

  EngineConfig config = EngineConfig::Detected();
  config.seed = 31;
  Mdd1rEngine engine(&base, config);

  Rng rng(2026);
  Value next_fresh = n;  // new sensor readings get fresh ids
  int64_t staged = 0;

  std::printf("%8s %10s %12s %12s %14s\n", "tick", "staged", "merged",
              "results", "pending now");
  for (int tick = 1; tick <= 40; ++tick) {
    // 25 inserts + 5 deletes arrive per tick.
    for (int i = 0; i < 25; ++i) {
      if (!engine.StageInsert(next_fresh++).ok()) return 1;
      ++staged;
    }
    for (int i = 0; i < 5; ++i) {
      // Deleting values we just inserted keeps the multiset well-defined.
      if (!engine.StageDelete(next_fresh - 1 - 5 * i).ok()) return 1;
      next_fresh -= 0;  // deletes target recent ids
      ++staged;
    }

    // Analyst query over a window that covers part of the fresh data.
    const Value lo = n + rng.UniformValue(0, (next_fresh - n) / 2 + 1);
    const Value hi = lo + 200;
    Query query;
    query.low = lo;
    query.high = hi;
    query.mode = OutputMode::kCount;
    QueryOutput result;
    if (Status s = engine.Execute(query, &result); !s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%8d %10lld %12lld %12lld %14lld\n", tick,
                static_cast<long long>(staged),
                static_cast<long long>(engine.stats().updates_merged),
                static_cast<long long>(result.count),
                static_cast<long long>(
                    engine.column().pending().num_pending_inserts() +
                    engine.column().pending().num_pending_deletes()));
  }

  // Full-domain sweep drains everything; verify the bookkeeping.
  Query sweep;
  sweep.low = -1;
  sweep.high = next_fresh + 1;
  sweep.mode = OutputMode::kCount;
  QueryOutput all;
  if (!engine.Execute(sweep, &all).ok()) return 1;
  std::printf("\nfull sweep: %lld rows (base %lld + inserts - deletes)\n",
              static_cast<long long>(all.count),
              static_cast<long long>(n));
  std::printf("pending after sweep: %lld (all merged)\n",
              static_cast<long long>(
                  engine.column().pending().num_pending_inserts() +
                  engine.column().pending().num_pending_deletes()));
  const Status valid = engine.Validate();
  std::printf("engine validation: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
