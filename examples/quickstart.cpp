// Quickstart: adaptive range selection with the scrack library.
//
// Builds a 2M-value column, registers it in an AdaptiveStore behind the
// paper's recommended robust strategy (MDD1R stochastic cracking), runs a
// handful of range queries, and shows how the cost per query collapses as
// the column cracks itself — no index was ever built explicitly.
//
//   ./quickstart
#include <cstdio>

#include "harness/adaptive_store.h"
#include "storage/column.h"
#include "util/timer.h"

using namespace scrack;

int main() {
  const Index n = 2'000'000;
  std::printf("Creating a column with %lld unique integers...\n",
              static_cast<long long>(n));

  AdaptiveStore store;
  Status status =
      store.AddColumn("price", Column::UniquePermutation(n, /*seed=*/1));
  if (!status.ok()) {
    std::fprintf(stderr, "AddColumn failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Range queries over the same region: the first pays a near-full scan
  // (and cracks the column as a side effect), the rest get cheaper.
  struct Probe {
    Value low, high;
  };
  const Probe probes[] = {
      {500'000, 500'100}, {500'050, 500'150}, {499'900, 500'200},
      {500'000, 500'100}, {1'200'000, 1'200'500},
  };

  std::printf("%-28s %12s %12s %14s\n", "query", "results", "micros",
              "tuples touched");
  for (const Probe& p : probes) {
    const int64_t touched_before =
        store.engine("price")->stats().tuples_touched;
    Timer timer;
    Query query;
    query.low = p.low;
    query.high = p.high;
    query.mode = OutputMode::kCount;
    QueryOutput result;
    status = store.Execute("price", query, &result);
    const double micros = timer.ElapsedSeconds() * 1e6;
    if (!status.ok()) {
      std::fprintf(stderr, "Execute failed: %s\n", status.ToString().c_str());
      return 1;
    }
    const int64_t touched =
        store.engine("price")->stats().tuples_touched - touched_before;
    std::printf("SELECT ... WHERE %7lld<=v<%-7lld %10lld %12.1f %14lld\n",
                static_cast<long long>(p.low),
                static_cast<long long>(p.high),
                static_cast<long long>(result.count), micros,
                static_cast<long long>(touched));
  }

  // Updates merge lazily into the cracked column.
  for (Value v = 500'000; v < 500'010; ++v) {
    if (Status s = store.Insert("price", v); !s.ok()) {
      std::fprintf(stderr, "Insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  Query recheck;
  recheck.low = 500'000;
  recheck.high = 500'100;
  recheck.mode = OutputMode::kCount;
  QueryOutput after;
  (void)store.Execute("price", recheck, &after);
  std::printf(
      "\nAfter staging 10 inserts, the same range now reports %lld rows.\n",
      static_cast<long long>(after.count));
  std::printf("Adaptive indexing needed no DDL, no tuning, no idle time.\n");
  return 0;
}
