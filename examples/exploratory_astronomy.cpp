// Exploratory astronomy session — the paper's motivating scenario (§1,
// Fig. 16).
//
// A scientist "scans the sky" through an exploratory query session: long
// dwells on one right-ascension region, then a jump to the next. We replay
// the same synthetic SkyServer trace against original cracking and against
// stochastic cracking and report the cumulative time per phase of the
// session — the live version of the paper's headline result (25s vs 2274s).
//
//   ./exploratory_astronomy [num_queries]
#include <cstdio>
#include <cstdlib>

#include "harness/engine_factory.h"
#include "storage/column.h"
#include "util/timer.h"
#include "workload/skyserver.h"

using namespace scrack;

int main(int argc, char** argv) {
  const Index n = 1'000'000;       // "right ascension" value domain
  QueryId q = 8000;                // session length
  if (argc > 1) q = std::max(1L, std::atol(argv[1]));

  std::printf("Photoobjall.ra: %lld tuples; session of %lld range queries\n",
              static_cast<long long>(n), static_cast<long long>(q));

  const Column ra = Column::UniquePermutation(n, /*seed=*/2026);
  WorkloadParams params;
  params.n = n;
  params.num_queries = q;
  params.selectivity = 20;
  params.seed = 612;
  const auto trace = MakeSkyServerWorkload(params);

  EngineConfig config = EngineConfig::Detected();
  config.seed = 7;

  for (const char* spec : {"crack", "pmdd1r:10"}) {
    auto engine = CreateEngineOrDie(spec, &ra, config);
    std::printf("\n--- strategy: %s ---\n", engine->name().c_str());
    std::printf("%10s %16s %18s\n", "query#", "cumulative secs",
                "tuples touched");
    Timer timer;
    double cumulative = 0;
    const QueryId report_every = std::max<QueryId>(1, q / 8);
    for (QueryId i = 0; i < static_cast<QueryId>(trace.size()); ++i) {
      timer.Start();
      Query query;
      query.low = trace[static_cast<size_t>(i)].low;
      query.high = trace[static_cast<size_t>(i)].high;
      query.mode = OutputMode::kMaterialize;
      QueryOutput result;
      if (Status s = engine->Execute(query, &result); !s.ok()) {
        std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
        return 1;
      }
      cumulative += timer.ElapsedSeconds();
      if ((i + 1) % report_every == 0 || i + 1 == q) {
        std::printf("%10lld %16.3f %18lld\n", static_cast<long long>(i + 1),
                    cumulative,
                    static_cast<long long>(engine->stats().tuples_touched));
      }
    }
    std::printf("session total: %.3f secs, %lld cracks introduced\n",
                cumulative,
                static_cast<long long>(engine->stats().cracks));
  }

  std::printf(
      "\nTake-away: under a focused exploratory pattern, original cracking\n"
      "keeps re-scanning the uncracked region of each new sky area, while\n"
      "stochastic cracking stays flat — the paper's Fig. 16 in miniature.\n");
  return 0;
}
