// Strategy advisor: compare indexing strategies on your workload shape.
//
// A downstream user rarely knows a priori whether their query pattern is
// "random enough" for original cracking. This example runs any workload
// pattern from the paper's catalogue against a configurable set of engines
// and prints a convergence table plus a recommendation, exercising the
// public factory + workload + experiment APIs end to end.
//
//   ./strategy_advisor [workload] [engines...]
//   ./strategy_advisor Sequential crack dd1r pmdd1r:10 sort
//   ./strategy_advisor SkyServer
#include <cstdio>
#include <string>
#include <vector>

#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "storage/column.h"
#include "workload/workload.h"

using namespace scrack;

int main(int argc, char** argv) {
  const Index n = 1'000'000;
  const QueryId q = 1000;

  std::string workload_name = argc > 1 ? argv[1] : "Sequential";
  WorkloadKind kind;
  if (!ParseWorkloadKind(workload_name, &kind)) {
    std::fprintf(stderr, "unknown workload '%s'; known:", argv[1]);
    for (WorkloadKind k : Fig17SyntheticKinds()) {
      std::fprintf(stderr, " %s", WorkloadName(k).c_str());
    }
    std::fprintf(stderr, " Mixed SkyServer\n");
    return 1;
  }

  std::vector<std::string> specs;
  for (int i = 2; i < argc; ++i) specs.push_back(argv[i]);
  if (specs.empty()) specs = {"scan", "sort", "crack", "dd1r", "pmdd1r:10"};

  const Column base = Column::UniquePermutation(n, 3);
  WorkloadParams params;
  params.n = n;
  params.num_queries = q;
  params.selectivity = 10;
  params.seed = 11;
  const auto queries = MakeWorkload(kind, params);

  EngineConfig config = EngineConfig::Detected();
  std::vector<RunResult> runs;
  for (const std::string& spec : specs) {
    std::unique_ptr<SelectEngine> engine;
    if (Status s = CreateEngine(spec, &base, config, &engine); !s.ok()) {
      std::fprintf(stderr, "bad engine '%s': %s\n", spec.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("running %-14s on %s...\n", engine->name().c_str(),
                WorkloadName(kind).c_str());
    runs.push_back(RunQueries(engine.get(), queries));
    if (!runs.back().status.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   runs.back().status.ToString().c_str());
      return 1;
    }
  }

  PrintCumulativeCurves("advisor: " + WorkloadName(kind), runs,
                        LogSpacedPoints(q));

  // Recommendation: lowest total; tie-break toward lower first-query cost.
  size_t best = 0;
  for (size_t i = 1; i < runs.size(); ++i) {
    const double total_i = runs[i].CumulativeSeconds();
    const double total_b = runs[best].CumulativeSeconds();
    if (total_i < total_b * 0.95 ||
        (total_i < total_b * 1.05 &&
         runs[i].CumulativeSeconds(1) < runs[best].CumulativeSeconds(1))) {
      best = i;
    }
  }
  std::printf("\nrecommendation for '%s': %s (total %.3fs, first query %.4fs)\n",
              WorkloadName(kind).c_str(), runs[best].engine_name.c_str(),
              runs[best].CumulativeSeconds(),
              runs[best].CumulativeSeconds(1));
  return 0;
}
